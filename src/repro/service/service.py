"""Routing-as-a-service: epochal tables + micro-batched kernel calls.

:class:`RoutingService` is the façade that assembles the pieces:

* an :class:`~repro.service.epoch.EpochManager` owning the safety-level
  table of the current fault epoch, published read-only through shared
  memory and re-stabilized *incrementally* on fault events;
* a :class:`~repro.service.batcher.MicroBatcher` aggregating concurrent
  ``route()`` calls into single batched-kernel executions within a
  size/deadline window;
* an execution backend — the asyncio loop's thread executor
  (``workers=0``; the kernel releases the GIL inside numpy, so one
  thread suffices until epoch tables stop fitting in cache) or a
  ``ProcessPoolExecutor`` whose workers attach the epoch segments by
  name (:mod:`repro.service.workers`).

The per-request guarantees, each enforced by the test suite:

* **Bit-identity.**  A response equals the offline
  ``route_unicast_batch`` outcome on (epoch fault set, src, dst) —
  status, admitting condition, hop count.
* **Epoch integrity.**  Every response carries the epoch it was computed
  against, and that epoch's table was sealed (seqlock-verified) before
  any batch read it: no response is ever derived from a torn or
  mixed-epoch table.
* **No drops.**  Every admitted request gets exactly one response, even
  across epoch swaps and shutdown; requests whose endpoint is faulty *at
  their batch's epoch* are answered with ``status="rejected"`` rather
  than poisoning the batch.
"""

from __future__ import annotations

import asyncio
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..core.faults import FaultSet
from ..core.hypercube import Hypercube
from ..obs.instruments import metrics, record_service_batch
from ..routing.batch import _CONDITION_BY_CODE, _STATUS_BY_CODE
from .batcher import MicroBatcher, PendingRequest
from .epoch import EpochManager, EpochSwap
from .shm import TornTableError
from .workers import clear_table_cache, route_task

__all__ = ["ServiceConfig", "ServiceResponse", "RoutingService"]

#: Responses for requests refused before the kernel (faulty endpoint at
#: the batch's epoch) — the graceful per-request failure mode.
REJECTED = "rejected"


@dataclass(frozen=True)
class ServiceConfig:
    """Tunables for one :class:`RoutingService` instance."""

    dimension: int
    max_batch: int = 256
    window_us: int = 500
    workers: int = 0
    tie_break: str = "lowest-dim"
    max_pending: int = 32_768


@dataclass(frozen=True)
class ServiceResponse:
    """One answered route request, tagged with its fault epoch."""

    source: int
    dest: int
    epoch: int
    #: RouteStatus value string, or ``"rejected"`` (faulty endpoint).
    status: str
    condition: str
    hops: int
    hamming: int

    @property
    def delivered(self) -> bool:
        return self.status == "delivered"

    def to_dict(self) -> dict:
        return {
            "source": self.source, "dest": self.dest, "epoch": self.epoch,
            "status": self.status, "condition": self.condition,
            "hops": self.hops, "hamming": self.hamming,
        }


class RoutingService:
    """Long-running unicast route service over one faulty hypercube.

    Use as an async context manager::

        async with RoutingService(ServiceConfig(dimension=8),
                                  faults=faults) as svc:
            resp = await svc.route(src, dst)
            await svc.inject_faults(add=[victim])   # epoch bump
            many = await svc.route_many(pairs)

    ``route`` may be called from any number of concurrent tasks; that
    concurrency is exactly what the micro-batcher converts into batched
    kernel throughput.
    """

    def __init__(
        self,
        config: ServiceConfig,
        faults: Optional[FaultSet] = None,
        name_token: Optional[str] = None,
    ) -> None:
        self.config = config
        self.topo = Hypercube(config.dimension)
        self.epochs = EpochManager(self.topo, faults,
                                   name_token=name_token)
        self.batcher = MicroBatcher(
            self._flush, max_batch=config.max_batch,
            window_us=config.window_us, max_pending=config.max_pending,
        )
        self._backend = "pool" if config.workers > 0 else "inline"
        self._pool = None
        self._threads = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-svc")
        self._closed = False
        #: Responses issued / requests rejected, service lifetime totals.
        self.responses = 0
        self.rejected = 0

    # -- lifecycle -----------------------------------------------------------

    async def __aenter__(self) -> "RoutingService":
        if self.config.workers > 0:
            self._pool = ProcessPoolExecutor(
                max_workers=self.config.workers)
        return self

    async def __aexit__(self, *exc) -> None:
        await self.close()

    async def close(self) -> None:
        """Drain in-flight batches, stop workers, unlink every segment."""
        if self._closed:
            return
        self._closed = True
        await self.batcher.drain()
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        self._threads.shutdown(wait=True)
        # The inline backend attaches segments in this process; drop those
        # mappings before the manager unlinks so nothing lingers.
        clear_table_cache()
        self.epochs.close()

    def terminate(self) -> None:
        """Synchronous last-resort cleanup (signal handlers, atexit).

        Skips draining — callers on this path are exiting *now* — but
        releases what the OS will not: the published segments.
        """
        self._closed = True
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None
        clear_table_cache()
        self.epochs.close()

    # -- the request path ----------------------------------------------------

    async def route(self, src: int, dst: int) -> ServiceResponse:
        """Answer one unicast route query (micro-batched under the hood)."""
        return await self.batcher.submit(src, dst)

    async def route_many(
        self, pairs: Iterable[Tuple[int, int]]
    ) -> List[ServiceResponse]:
        """Submit many queries concurrently; responses in input order."""
        return list(await asyncio.gather(
            *(self.route(s, d) for s, d in pairs)))

    async def inject_faults(
        self, add: Sequence[int] = (), remove: Sequence[int] = ()
    ) -> EpochSwap:
        """One fault event: bump the epoch without stalling the loop.

        The incremental re-stabilization and segment publish run on the
        service's executor thread; request intake continues against the
        old epoch until the swap lands.
        """
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(
            self._threads, self.epochs.apply_fault_event, tuple(add),
            tuple(remove))

    # -- batch execution -----------------------------------------------------

    async def _flush(self, batch: List[PendingRequest]) -> None:
        """Route one micro-batch against the pinned current epoch."""
        start_ns = time.perf_counter_ns()
        queue_us = (start_ns - min(r.enqueued_ns for r in batch)) // 1000
        view = self.epochs.acquire()
        try:
            srcs = np.fromiter((r.src for r in batch), dtype=np.int64,
                               count=len(batch))
            dsts = np.fromiter((r.dst for r in batch), dtype=np.int64,
                               count=len(batch))
            bad = ((srcs < 0) | (srcs >= self.topo.num_nodes)
                   | (dsts < 0) | (dsts >= self.topo.num_nodes))
            live = ~bad
            live[live] &= ((view.levels[srcs[live]] > 0)
                           & (view.levels[dsts[live]] > 0))
            keep = np.flatnonzero(live)
            if keep.size:
                loop = asyncio.get_running_loop()
                executor = self._pool if self._pool is not None \
                    else self._threads
                try:
                    epoch, status, condition, hops, hamming = \
                        await loop.run_in_executor(
                            executor, route_task, view.segment, view.epoch,
                            self.topo.dimension, srcs[keep], dsts[keep],
                            self.config.tie_break)
                except TornTableError:
                    # Cannot happen with sealed immutable segments — the
                    # counter existing (and staying 0) is the audit trail
                    # the benchmark and smoke job assert on.
                    reg = metrics()
                    if reg.enabled:
                        reg.counter("service.torn_reads").inc()
                    raise
            else:
                epoch = view.epoch
                status = condition = hops = hamming = None
        finally:
            self.epochs.unpin(view.epoch)

        rejected = len(batch) - keep.size
        pos = {int(row): k for k, row in enumerate(keep)}
        for i, req in enumerate(batch):
            k = pos.get(i)
            if k is None:
                resp = ServiceResponse(
                    source=req.src, dest=req.dst, epoch=view.epoch,
                    status=REJECTED, condition="none", hops=0,
                    hamming=int(bin(req.src ^ req.dst).count("1")),
                )
            else:
                resp = ServiceResponse(
                    source=req.src, dest=req.dst, epoch=epoch,
                    status=_STATUS_BY_CODE[int(status[k])].value,
                    condition=_CONDITION_BY_CODE[int(condition[k])].value,
                    hops=int(hops[k]), hamming=int(hamming[k]),
                )
            if not req.future.done():
                req.future.set_result(resp)
        self.responses += len(batch)
        self.rejected += rejected
        exec_us = (time.perf_counter_ns() - start_ns) // 1000
        record_service_batch(
            n=self.topo.dimension, epoch=view.epoch, routes=int(keep.size),
            rejected=rejected, backend=self._backend,
            queue_us=int(queue_us), exec_us=int(exec_us),
        )
