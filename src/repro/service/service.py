"""Routing-as-a-service: epochal tables + micro-batched kernel calls.

:class:`RoutingService` is the façade that assembles the pieces:

* an :class:`~repro.service.epoch.EpochManager` owning the safety-level
  table of the current fault epoch, published read-only through shared
  memory, re-stabilized *incrementally* on fault events, and swapped by
  resealing a warm-spare segment off the request path;
* a :class:`~repro.service.batcher.MicroBatcher` aggregating concurrent
  ``route()`` calls — and whole :meth:`route_block` vectors — into
  single batched-kernel executions within a size/deadline window;
* an execution backend — the asyncio loop's thread executor
  (``workers=0``; the kernel releases the GIL inside numpy, so one
  thread suffices until epoch tables stop fitting in cache) or a
  ``ProcessPoolExecutor`` whose workers attach the epoch segments by
  name (:mod:`repro.service.workers`).

A service may run standalone (it builds its own executors) or as one
shard behind a :class:`~repro.service.shard.ShardRouter`, in which case
the router passes *shared* executors in — N shards, one process pool —
and the shard never shuts down what it does not own.

The per-request guarantees, each enforced by the test suite:

* **Bit-identity.**  A response equals the offline
  ``route_unicast_batch`` outcome on (epoch fault set, src, dst) —
  status, admitting condition, hop count.
* **Epoch integrity.**  Every response carries the epoch it was computed
  against, and that epoch's table was sealed (seqlock-verified) before
  any batch read it: no response is ever derived from a torn or
  mixed-epoch table.  A block is answered from exactly one epoch.
* **No drops.**  Every admitted request gets exactly one response, even
  across epoch swaps and shutdown; requests whose endpoint is faulty *at
  their batch's epoch* are answered with ``status="rejected"`` rather
  than poisoning the batch.
"""

from __future__ import annotations

import asyncio
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..core.faults import FaultSet
from ..core.hypercube import Hypercube
from ..obs.instruments import metrics, record_block_submission, \
    record_service_batch
from ..routing.batch import _CONDITION_BY_CODE, _STATUS_BY_CODE
from .batcher import MicroBatcher, PendingBlock, PendingRequest
from .epoch import EpochManager, EpochSwap
from .shm import TornTableError
from .workers import clear_table_cache, route_task

__all__ = ["ServiceConfig", "ServiceResponse", "BlockResponse",
           "RoutingService", "REJECTED", "REJECTED_CODE",
           "status_string", "condition_string"]

#: Responses for requests refused before the kernel (faulty endpoint at
#: the batch's epoch) — the graceful per-request failure mode.
REJECTED = "rejected"

#: Status code for refused rows in block responses.  The kernel's codes
#: are 0..2; 255 is unmistakably out of that space and fits the wire
#: format's uint8 status column.
REJECTED_CODE = 255

#: Condition code for refused rows (== the kernel's "none").
_CONDITION_NONE_CODE = len(_CONDITION_BY_CODE) - 1


def status_string(code: int) -> str:
    """Kernel status code (or :data:`REJECTED_CODE`) -> wire string."""
    if code == REJECTED_CODE:
        return REJECTED
    return _STATUS_BY_CODE[code].value


def condition_string(code: int) -> str:
    return _CONDITION_BY_CODE[code].value


def _popcount64(values: np.ndarray) -> np.ndarray:
    """Vectorized 64-bit popcount (SWAR) for Hamming distances."""
    x = np.abs(values).astype(np.uint64)
    x = x - ((x >> np.uint64(1)) & np.uint64(0x5555555555555555))
    x = ((x & np.uint64(0x3333333333333333))
         + ((x >> np.uint64(2)) & np.uint64(0x3333333333333333)))
    x = (x + (x >> np.uint64(4))) & np.uint64(0x0F0F0F0F0F0F0F0F)
    return ((x * np.uint64(0x0101010101010101))
            >> np.uint64(56)).astype(np.int64)


@dataclass(frozen=True)
class ServiceConfig:
    """Tunables for one :class:`RoutingService` instance."""

    dimension: int
    max_batch: int = 256
    window_us: int = 500
    workers: int = 0
    tie_break: str = "lowest-dim"
    max_pending: int = 32_768
    #: Warm-spare ring size for the epoch manager.
    spares: int = 2


@dataclass(frozen=True)
class ServiceResponse:
    """One answered route request, tagged with its fault epoch."""

    source: int
    dest: int
    epoch: int
    #: RouteStatus value string, or ``"rejected"`` (faulty endpoint).
    status: str
    condition: str
    hops: int
    hamming: int

    @property
    def delivered(self) -> bool:
        return self.status == "delivered"

    def to_dict(self) -> dict:
        return {
            "source": self.source, "dest": self.dest, "epoch": self.epoch,
            "status": self.status, "condition": self.condition,
            "hops": self.hops, "hamming": self.hamming,
        }


@dataclass(frozen=True)
class BlockResponse:
    """One answered block: columnar outcomes for a whole vector of pairs.

    All rows were routed against the *same* epoch in the same kernel
    call.  ``status``/``condition`` are the kernel's integer codes
    (uint8), with refused rows carrying :data:`REJECTED_CODE` — exactly
    the columns the binary wire format ships, so a server can frame a
    block response without per-row object churn.
    """

    sources: np.ndarray
    dests: np.ndarray
    epoch: int
    status: np.ndarray      # uint8 codes; REJECTED_CODE for refused rows
    condition: np.ndarray   # uint8 codes
    hops: np.ndarray        # int64
    hamming: np.ndarray     # int64

    def __len__(self) -> int:
        return len(self.sources)

    @property
    def rejected(self) -> int:
        return int((self.status == REJECTED_CODE).sum())

    def response(self, i: int) -> ServiceResponse:
        """Materialize row ``i`` as a scalar :class:`ServiceResponse`."""
        code = int(self.status[i])
        return ServiceResponse(
            source=int(self.sources[i]), dest=int(self.dests[i]),
            epoch=self.epoch, status=status_string(code),
            condition=condition_string(int(self.condition[i])),
            hops=int(self.hops[i]), hamming=int(self.hamming[i]),
        )

    def to_responses(self) -> List[ServiceResponse]:
        return [self.response(i) for i in range(len(self.sources))]


class RoutingService:
    """Long-running unicast route service over one faulty hypercube.

    Use as an async context manager::

        async with RoutingService(ServiceConfig(dimension=8),
                                  faults=faults) as svc:
            resp = await svc.route(src, dst)
            await svc.inject_faults(add=[victim])   # epoch bump
            many = await svc.route_many(pairs)
            block = await svc.route_block(srcs, dsts)

    ``route`` may be called from any number of concurrent tasks; that
    concurrency is exactly what the micro-batcher converts into batched
    kernel throughput.  ``route_block`` submits a whole vector as one
    batcher entry — the wire path's unit of work.

    ``threads``/``pool`` inject shared executors (the shard router's
    one-pool-for-N-shards layout); the service only shuts down executors
    it created itself.
    """

    def __init__(
        self,
        config: ServiceConfig,
        faults: Optional[FaultSet] = None,
        name_token: Optional[str] = None,
        threads: Optional[ThreadPoolExecutor] = None,
        pool: Optional[ProcessPoolExecutor] = None,
    ) -> None:
        self.config = config
        self.topo = Hypercube(config.dimension)
        self.epochs = EpochManager(self.topo, faults,
                                   name_token=name_token,
                                   spares=config.spares)
        self.batcher = MicroBatcher(
            self._flush, max_batch=config.max_batch,
            window_us=config.window_us, max_pending=config.max_pending,
        )
        self._backend = "pool" if (config.workers > 0 or pool is not None) \
            else "inline"
        self._pool = pool
        self._owns_pool = pool is None
        # Two threads so epoch publication (inject_faults' stabilization
        # + seal) never heads-of-line-blocks a kernel flush — the churn
        # p99 ceiling in the bench depends on this.
        self._threads = threads if threads is not None else \
            ThreadPoolExecutor(max_workers=2, thread_name_prefix="repro-svc")
        self._owns_threads = threads is None
        self._closed = False
        #: Responses issued / requests rejected, service lifetime totals.
        self.responses = 0
        self.rejected = 0

    # -- lifecycle -----------------------------------------------------------

    async def __aenter__(self) -> "RoutingService":
        if self.config.workers > 0 and self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=self.config.workers)
            self._owns_pool = True
        return self

    async def __aexit__(self, *exc) -> None:
        await self.close()

    async def close(self) -> None:
        """Drain in-flight batches, stop workers, unlink every segment."""
        if self._closed:
            return
        self._closed = True
        await self.batcher.drain()
        if self._pool is not None and self._owns_pool:
            self._pool.shutdown(wait=True)
        self._pool = None
        if self._owns_threads:
            self._threads.shutdown(wait=True)
        # The inline backend attaches segments in this process; drop those
        # mappings before the manager unlinks so nothing lingers.
        clear_table_cache()
        self.epochs.close()

    def terminate(self) -> None:
        """Synchronous last-resort cleanup (signal handlers, atexit).

        Skips draining — callers on this path are exiting *now* — but
        releases what the OS will not: the published segments.
        """
        self._closed = True
        if self._pool is not None and self._owns_pool:
            self._pool.shutdown(wait=False, cancel_futures=True)
        self._pool = None
        clear_table_cache()
        self.epochs.close()

    # -- the request path ----------------------------------------------------

    async def route(self, src: int, dst: int) -> ServiceResponse:
        """Answer one unicast route query (micro-batched under the hood)."""
        return await self.batcher.submit(src, dst)

    async def route_many(
        self, pairs: Iterable[Tuple[int, int]]
    ) -> List[ServiceResponse]:
        """Submit many queries concurrently; responses in input order."""
        return list(await asyncio.gather(
            *(self.route(s, d) for s, d in pairs)))

    async def route_block(
        self, srcs: np.ndarray, dsts: np.ndarray
    ) -> BlockResponse:
        """Answer a whole vector of pairs as one entry, one future, one epoch.

        The amortization lever behind the wire path: a pipelined client's
        frame of R routes costs one admission, one future, and one demux
        slice instead of R of each.
        """
        record_block_submission(len(np.atleast_1d(srcs)))
        return await self.batcher.submit_block(srcs, dsts)

    async def inject_faults(
        self, add: Sequence[int] = (), remove: Sequence[int] = ()
    ) -> EpochSwap:
        """One fault event: bump the epoch without stalling the loop.

        The incremental re-stabilization and warm-spare reseal run on the
        service's executor thread; request intake continues against the
        old epoch until the pointer flip lands.
        """
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(
            self._threads, self.epochs.apply_fault_event, tuple(add),
            tuple(remove))

    # -- batch execution -----------------------------------------------------

    def _gather_rows(
        self, batch: List[object]
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Flatten batch entries into row vectors + per-entry offsets."""
        if all(isinstance(e, PendingRequest) for e in batch):
            srcs = np.fromiter((e.src for e in batch), dtype=np.int64,
                               count=len(batch))
            dsts = np.fromiter((e.dst for e in batch), dtype=np.int64,
                               count=len(batch))
            offsets = np.arange(len(batch) + 1, dtype=np.int64)
            return srcs, dsts, offsets
        counts = np.fromiter((e.rows for e in batch), dtype=np.int64,
                             count=len(batch))
        offsets = np.zeros(len(batch) + 1, dtype=np.int64)
        np.cumsum(counts, out=offsets[1:])
        total = int(offsets[-1])
        srcs = np.empty(total, dtype=np.int64)
        dsts = np.empty(total, dtype=np.int64)
        for entry, lo, hi in zip(batch, offsets[:-1], offsets[1:]):
            if isinstance(entry, PendingBlock):
                srcs[lo:hi] = entry.srcs
                dsts[lo:hi] = entry.dsts
            else:
                srcs[lo] = entry.src
                dsts[lo] = entry.dst
        return srcs, dsts, offsets

    async def _flush(self, batch: List[object]) -> None:
        """Route one micro-batch against the pinned current epoch."""
        start_ns = time.perf_counter_ns()
        queue_us = (start_ns - min(r.enqueued_ns for r in batch)) // 1000
        srcs, dsts, offsets = self._gather_rows(batch)
        total = len(srcs)
        view = self.epochs.acquire()
        try:
            bad = ((srcs < 0) | (srcs >= self.topo.num_nodes)
                   | (dsts < 0) | (dsts >= self.topo.num_nodes))
            live = ~bad
            live[live] &= ((view.levels[srcs[live]] > 0)
                           & (view.levels[dsts[live]] > 0))
            keep = np.flatnonzero(live)
            # Full-width result columns, pre-filled with the refusal row.
            status = np.full(total, REJECTED_CODE, dtype=np.uint8)
            condition = np.full(total, _CONDITION_NONE_CODE, dtype=np.uint8)
            hops = np.zeros(total, dtype=np.int64)
            hamming = _popcount64(srcs ^ dsts)
            if keep.size:
                loop = asyncio.get_running_loop()
                executor = self._pool if self._pool is not None \
                    else self._threads
                try:
                    epoch, k_status, k_condition, k_hops, k_hamming = \
                        await loop.run_in_executor(
                            executor, route_task, view.segment, view.epoch,
                            self.topo.dimension, srcs[keep], dsts[keep],
                            self.config.tie_break)
                except TornTableError:
                    # Cannot happen with sealed immutable segments — the
                    # counter existing (and staying 0) is the audit trail
                    # the benchmark and smoke job assert on.
                    reg = metrics()
                    if reg.enabled:
                        reg.counter("service.torn_reads").inc()
                    raise
                status[keep] = k_status.astype(np.uint8)
                condition[keep] = k_condition.astype(np.uint8)
                hops[keep] = k_hops
                hamming[keep] = k_hamming
        finally:
            self.epochs.unpin(view.epoch)

        rejected = total - int(keep.size)
        for entry, lo, hi in zip(batch, offsets[:-1], offsets[1:]):
            lo, hi = int(lo), int(hi)
            if isinstance(entry, PendingBlock):
                resp: object = BlockResponse(
                    sources=entry.srcs, dests=entry.dsts, epoch=view.epoch,
                    status=status[lo:hi].copy(),
                    condition=condition[lo:hi].copy(),
                    hops=hops[lo:hi].copy(),
                    hamming=hamming[lo:hi].copy(),
                )
            else:
                code = int(status[lo])
                resp = ServiceResponse(
                    source=entry.src, dest=entry.dst, epoch=view.epoch,
                    status=status_string(code),
                    condition=condition_string(int(condition[lo])),
                    hops=int(hops[lo]), hamming=int(hamming[lo]),
                )
            if not entry.future.done():
                entry.future.set_result(resp)
        self.responses += total
        self.rejected += rejected
        exec_us = (time.perf_counter_ns() - start_ns) // 1000
        record_service_batch(
            n=self.topo.dimension, epoch=view.epoch, routes=int(keep.size),
            rejected=rejected, backend=self._backend,
            queue_us=int(queue_us), exec_us=int(exec_us),
            entries=len(batch) if len(batch) != total else None,
        )
