"""Length-prefixed binary RPC framing for the routing service.

The line protocol (:mod:`repro.service.server`) costs a JSON encode, a
UTF-8 decode, and a Python dict per route — fine for humans on ``nc``,
hopeless for a pipelined load generator.  This module defines the binary
wire format both the server and :class:`WireClient` speak, built for
three properties:

* **Pipelining.**  Every request carries a 64-bit ``req_id`` the server
  echoes in the matching reply, so a client keeps any number of requests
  in flight on one connection and matches replies out of order — no
  request/response lockstep, no head-of-line blocking on the client.
* **Batching on the wire.**  The ``BLOCK`` op ships a whole vector of
  route pairs as two int64 columns in one frame, answered by one
  columnar reply frame — the service routes it as a single batcher entry
  (one future, one kernel call), so per-route overhead amortizes at
  every layer from socket to kernel.
* **Cheap framing.**  A fixed 14-byte header (struct-packed, network
  order) with an explicit payload length: framing is two reads, no
  scanning, no escaping.

Frame layout::

    offset  size  field
    0       1     magic (0xAB — also the protocol-detection byte)
    1       1     op code
    2       4     payload length (uint32, network order)
    6       8     req_id (uint64, echoed verbatim in the reply)
    14      ...   payload (op-specific, see the tables in DESIGN.md §8)

Array columns inside payloads are little-endian numpy dtypes (``<i8``,
``u1``, ``<u2``) — explicit, so the format is byte-defined even on
big-endian hosts.  Scalar fields are network order via :mod:`struct`.

A server answers any malformed or failed frame with an ``ERROR`` frame
carrying the request's ``req_id``, a structured error code, and a
message — the connection stays alive (satellite requirement: bad input
must never kill the session).  Only an unsynchronizable stream (wrong
magic byte mid-stream) closes the connection, because after a framing
desync there is no boundary to resume from.
"""

from __future__ import annotations

import asyncio
import itertools
import struct
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "MAGIC", "HEADER", "MAX_PAYLOAD",
    "OP_TENANT", "OP_ROUTE", "OP_BLOCK", "OP_FAULT", "OP_EPOCH",
    "OP_TENANT_R", "OP_ROUTE_R", "OP_BLOCK_R", "OP_FAULT_R", "OP_EPOCH_R",
    "OP_ERROR",
    "E_BAD_FRAME", "E_UNKNOWN_OP", "E_BAD_REQUEST", "E_UNKNOWN_TENANT",
    "E_SHARD_DOWN", "E_NO_TENANT", "E_INTERNAL",
    "E_RETRY", "E_MOVED", "E_OVERLOAD", "RETRYABLE_CODES",
    "WireError", "RouteReply", "BlockReply", "FaultReply",
    "encode_frame", "read_frame",
    "encode_route", "decode_route", "encode_block", "decode_block",
    "encode_fault", "decode_fault",
    "encode_route_reply", "decode_route_reply",
    "encode_block_reply", "decode_block_reply",
    "encode_fault_reply", "decode_fault_reply",
    "encode_error", "decode_error",
    "WireClient",
]

#: First byte of every binary frame; the server peeks one byte to pick
#: binary vs line protocol, so MAGIC must never be valid leading UTF-8
#: for a line request (0xAB is a continuation byte — it is not).
MAGIC = 0xAB

#: magic, op, payload_len, req_id.
HEADER = struct.Struct("!BBIQ")

#: Refuse absurd frames before allocating for them (16 MiB ≈ a 1M-route
#: block; far beyond any sane batch).
MAX_PAYLOAD = 16 * 1024 * 1024

# -- op codes (requests 0x01-0x7F, replies 0x80-0xFE, error 0xFF) -----------

OP_TENANT = 0x01   # bind this connection to a tenant (utf-8 name payload)
OP_ROUTE = 0x02    # one route: !QQ src, dst
OP_BLOCK = 0x03    # route vector: !I count + <i8 srcs + <i8 dsts
OP_FAULT = 0x04    # fault event: !II n_add, n_remove + <i8 add + <i8 remove
OP_EPOCH = 0x05    # current epoch: empty payload

OP_TENANT_R = 0x81  # !QB epoch, dimension
OP_ROUTE_R = 0x82   # !QBBHH epoch, status, condition, hops, hamming
OP_BLOCK_R = 0x83   # !QI epoch, count + u1 status + u1 cond + <u2 hops + <u2 ham
OP_FAULT_R = 0x84   # !QIIBQQ epoch, added, removed, spare, publish_us, flip_us
OP_EPOCH_R = 0x85   # !QI epoch, faults
OP_ERROR = 0xFF     # !H code + utf-8 message

# -- structured error codes --------------------------------------------------

E_BAD_FRAME = 1       # header/payload failed to parse
E_UNKNOWN_OP = 2      # op code this server does not speak
E_BAD_REQUEST = 3     # well-framed but semantically invalid
E_UNKNOWN_TENANT = 4  # tenant not registered with the shard router
E_SHARD_DOWN = 5      # tenant's shard was killed (terminal: no failover)
E_NO_TENANT = 6       # route before OP_TENANT on a multi-tenant server
E_INTERNAL = 7        # dispatch raised something unexpected
E_RETRY = 8           # transient (failover in flight): back off and retry
E_MOVED = 9           # tenant re-placed mid-request: re-resolve, retry now
E_OVERLOAD = 10       # admission control shed the request: back off, retry

#: Codes a client may safely retry.  Routing is pure per epoch — a
#: replayed request cannot double-apply anything — so retry semantics
#: are a property of the *code*, not the op.  ``E_MOVED`` needs no
#: backoff (the tenant is already live elsewhere); the others do.
RETRYABLE_CODES = frozenset({E_RETRY, E_MOVED, E_OVERLOAD})

_ROUTE = struct.Struct("!QQ")
_ROUTE_R = struct.Struct("!QBBHH")
_BLOCK_HDR = struct.Struct("!I")
_BLOCK_R_HDR = struct.Struct("!QI")
_FAULT_HDR = struct.Struct("!II")
_FAULT_R = struct.Struct("!QIIBQQ")
_ERROR_HDR = struct.Struct("!H")
_TENANT_R = struct.Struct("!QB")
_EPOCH_R = struct.Struct("!QI")


class WireError(RuntimeError):
    """A structured ERROR frame, surfaced client-side as an exception."""

    def __init__(self, code: int, message: str) -> None:
        super().__init__(f"[wire error {code}] {message}")
        self.code = code
        self.message = message


@dataclass(frozen=True)
class RouteReply:
    epoch: int
    status: int      # kernel status code, or REJECTED_CODE (255)
    condition: int
    hops: int
    hamming: int


@dataclass(frozen=True)
class BlockReply:
    epoch: int
    status: np.ndarray     # uint8
    condition: np.ndarray  # uint8
    hops: np.ndarray       # int64 (shipped as <u2)
    hamming: np.ndarray

    def __len__(self) -> int:
        return len(self.status)


@dataclass(frozen=True)
class FaultReply:
    epoch: int
    added: int
    removed: int
    spare: bool
    publish_us: int
    flip_us: int


# -- framing -----------------------------------------------------------------


def encode_frame(op: int, req_id: int, payload: bytes = b"") -> bytes:
    if len(payload) > MAX_PAYLOAD:
        raise ValueError(f"payload of {len(payload)} bytes exceeds the "
                         f"{MAX_PAYLOAD}-byte frame limit")
    return HEADER.pack(MAGIC, op, len(payload), req_id) + payload


async def read_frame(
    reader: asyncio.StreamReader,
) -> Optional[Tuple[int, int, bytes]]:
    """Read one ``(op, req_id, payload)`` frame; ``None`` on clean EOF.

    Raises :class:`WireError` (``E_BAD_FRAME``) on a bad magic byte or an
    oversized payload — both framing desyncs the caller must treat as
    fatal for the connection.
    """
    try:
        header = await reader.readexactly(HEADER.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise WireError(E_BAD_FRAME,
                        f"truncated header ({len(exc.partial)} bytes)")
    magic, op, length, req_id = HEADER.unpack(header)
    if magic != MAGIC:
        raise WireError(E_BAD_FRAME, f"bad magic byte 0x{magic:02x}")
    if length > MAX_PAYLOAD:
        raise WireError(E_BAD_FRAME, f"payload length {length} exceeds "
                        f"the {MAX_PAYLOAD}-byte limit")
    try:
        payload = await reader.readexactly(length) if length else b""
    except asyncio.IncompleteReadError:
        raise WireError(E_BAD_FRAME, "truncated payload")
    return op, req_id, payload


# -- per-op payload codecs ---------------------------------------------------


def encode_route(src: int, dst: int) -> bytes:
    return _ROUTE.pack(src, dst)


def decode_route(payload: bytes) -> Tuple[int, int]:
    if len(payload) != _ROUTE.size:
        raise WireError(E_BAD_REQUEST,
                        f"ROUTE payload must be {_ROUTE.size} bytes, "
                        f"got {len(payload)}")
    return _ROUTE.unpack(payload)


def encode_block(srcs: np.ndarray, dsts: np.ndarray) -> bytes:
    srcs = np.ascontiguousarray(np.asarray(srcs).ravel(), dtype="<i8")
    dsts = np.ascontiguousarray(np.asarray(dsts).ravel(), dtype="<i8")
    if len(srcs) != len(dsts):
        raise ValueError(f"column lengths differ: {len(srcs)} vs {len(dsts)}")
    if len(srcs) == 0:
        raise ValueError("empty block")
    return _BLOCK_HDR.pack(len(srcs)) + srcs.tobytes() + dsts.tobytes()


def decode_block(payload: bytes) -> Tuple[np.ndarray, np.ndarray]:
    if len(payload) < _BLOCK_HDR.size:
        raise WireError(E_BAD_REQUEST, "BLOCK payload shorter than header")
    (count,) = _BLOCK_HDR.unpack_from(payload)
    expect = _BLOCK_HDR.size + 16 * count
    if count == 0 or len(payload) != expect:
        raise WireError(E_BAD_REQUEST,
                        f"BLOCK of {count} routes must be {expect} bytes, "
                        f"got {len(payload)}")
    srcs = np.frombuffer(payload, dtype="<i8", count=count,
                         offset=_BLOCK_HDR.size).astype(np.int64)
    dsts = np.frombuffer(payload, dtype="<i8", count=count,
                         offset=_BLOCK_HDR.size + 8 * count).astype(np.int64)
    return srcs, dsts


def encode_fault(add: Sequence[int] = (), remove: Sequence[int] = ()) -> bytes:
    add_arr = np.ascontiguousarray(np.asarray(list(add), dtype="<i8"))
    rem_arr = np.ascontiguousarray(np.asarray(list(remove), dtype="<i8"))
    return (_FAULT_HDR.pack(len(add_arr), len(rem_arr))
            + add_arr.tobytes() + rem_arr.tobytes())


def decode_fault(payload: bytes) -> Tuple[np.ndarray, np.ndarray]:
    if len(payload) < _FAULT_HDR.size:
        raise WireError(E_BAD_REQUEST, "FAULT payload shorter than header")
    n_add, n_rem = _FAULT_HDR.unpack_from(payload)
    expect = _FAULT_HDR.size + 8 * (n_add + n_rem)
    if len(payload) != expect:
        raise WireError(E_BAD_REQUEST,
                        f"FAULT of {n_add}+{n_rem} nodes must be "
                        f"{expect} bytes, got {len(payload)}")
    add = np.frombuffer(payload, dtype="<i8", count=n_add,
                        offset=_FAULT_HDR.size).astype(np.int64)
    rem = np.frombuffer(payload, dtype="<i8", count=n_rem,
                        offset=_FAULT_HDR.size + 8 * n_add).astype(np.int64)
    return add, rem


def encode_route_reply(epoch: int, status: int, condition: int,
                       hops: int, hamming: int) -> bytes:
    return _ROUTE_R.pack(epoch, status, condition, hops, hamming)


def decode_route_reply(payload: bytes) -> RouteReply:
    epoch, status, condition, hops, hamming = _ROUTE_R.unpack(payload)
    return RouteReply(epoch=epoch, status=status, condition=condition,
                      hops=hops, hamming=hamming)


def encode_block_reply(epoch: int, status: np.ndarray,
                       condition: np.ndarray, hops: np.ndarray,
                       hamming: np.ndarray) -> bytes:
    count = len(status)
    return (
        _BLOCK_R_HDR.pack(epoch, count)
        + np.ascontiguousarray(status, dtype="u1").tobytes()
        + np.ascontiguousarray(condition, dtype="u1").tobytes()
        + np.ascontiguousarray(hops, dtype="<u2").tobytes()
        + np.ascontiguousarray(hamming, dtype="<u2").tobytes()
    )


def decode_block_reply(payload: bytes) -> BlockReply:
    epoch, count = _BLOCK_R_HDR.unpack_from(payload)
    off = _BLOCK_R_HDR.size
    expect = off + count * (1 + 1 + 2 + 2)
    if len(payload) != expect:
        raise WireError(E_BAD_FRAME,
                        f"BLOCK reply of {count} routes must be "
                        f"{expect} bytes, got {len(payload)}")
    status = np.frombuffer(payload, dtype="u1", count=count, offset=off)
    condition = np.frombuffer(payload, dtype="u1", count=count,
                              offset=off + count)
    hops = np.frombuffer(payload, dtype="<u2", count=count,
                         offset=off + 2 * count).astype(np.int64)
    hamming = np.frombuffer(payload, dtype="<u2", count=count,
                            offset=off + 4 * count).astype(np.int64)
    return BlockReply(epoch=epoch, status=status.copy(),
                      condition=condition.copy(), hops=hops, hamming=hamming)


def encode_fault_reply(epoch: int, added: int, removed: int, spare: bool,
                       publish_us: int, flip_us: int) -> bytes:
    return _FAULT_R.pack(epoch, added, removed, int(spare),
                         publish_us, flip_us)


def decode_fault_reply(payload: bytes) -> FaultReply:
    epoch, added, removed, spare, publish_us, flip_us = \
        _FAULT_R.unpack(payload)
    return FaultReply(epoch=epoch, added=added, removed=removed,
                      spare=bool(spare), publish_us=publish_us,
                      flip_us=flip_us)


def encode_error(code: int, message: str) -> bytes:
    return _ERROR_HDR.pack(code) + message.encode("utf-8", "replace")


def decode_error(payload: bytes) -> WireError:
    (code,) = _ERROR_HDR.unpack_from(payload)
    return WireError(code, payload[_ERROR_HDR.size:].decode("utf-8",
                                                            "replace"))


# -- client ------------------------------------------------------------------


class WireClient:
    """Pipelined binary-protocol client (asyncio).

    Any number of requests may be outstanding at once; a background
    reader task matches replies to callers by ``req_id``.  ERROR frames
    resolve the matching caller with :class:`WireError` — one request's
    failure never disturbs its neighbors on the connection.
    """

    def __init__(self, reader: asyncio.StreamReader,
                 writer: asyncio.StreamWriter) -> None:
        self._reader = reader
        self._writer = writer
        self._pending: Dict[int, asyncio.Future] = {}
        self._req_ids = itertools.count(1)
        self._closed = False
        self._reader_task = asyncio.get_running_loop().create_task(
            self._read_loop())

    @classmethod
    async def connect(cls, host: str, port: int) -> "WireClient":
        reader, writer = await asyncio.open_connection(host, port)
        return cls(reader, writer)

    async def _read_loop(self) -> None:
        try:
            while True:
                frame = await read_frame(self._reader)
                if frame is None:
                    break
                op, req_id, payload = frame
                fut = self._pending.pop(req_id, None)
                if fut is None or fut.done():
                    continue
                if op == OP_ERROR:
                    fut.set_exception(decode_error(payload))
                else:
                    fut.set_result((op, payload))
        except (WireError, ConnectionResetError, asyncio.CancelledError) as exc:
            self._fail_pending(exc if isinstance(exc, Exception)
                               else ConnectionError("connection closed"))
            return
        self._fail_pending(ConnectionError("server closed the connection"))

    def _fail_pending(self, exc: Exception) -> None:
        pending, self._pending = self._pending, {}
        for fut in pending.values():
            if not fut.done():
                fut.set_exception(exc)

    async def _call(self, op: int, payload: bytes,
                    expect: int) -> bytes:
        if self._closed:
            raise RuntimeError("client is closed")
        req_id = next(self._req_ids)
        fut = asyncio.get_running_loop().create_future()
        self._pending[req_id] = fut
        self._writer.write(encode_frame(op, req_id, payload))
        await self._writer.drain()
        reply_op, reply = await fut
        if reply_op != expect:
            raise WireError(E_BAD_FRAME,
                            f"expected reply op 0x{expect:02x}, "
                            f"got 0x{reply_op:02x}")
        return reply

    # -- the RPC surface -----------------------------------------------------

    async def set_tenant(self, name: str) -> Tuple[int, int]:
        """Bind the connection to a tenant; returns (epoch, dimension)."""
        reply = await self._call(OP_TENANT, name.encode("utf-8"),
                                 OP_TENANT_R)
        return _TENANT_R.unpack(reply)

    async def route(self, src: int, dst: int) -> RouteReply:
        reply = await self._call(OP_ROUTE, encode_route(src, dst),
                                 OP_ROUTE_R)
        return decode_route_reply(reply)

    async def route_block(self, srcs: np.ndarray,
                          dsts: np.ndarray) -> BlockReply:
        reply = await self._call(OP_BLOCK, encode_block(srcs, dsts),
                                 OP_BLOCK_R)
        return decode_block_reply(reply)

    async def inject_faults(self, add: Sequence[int] = (),
                            remove: Sequence[int] = ()) -> FaultReply:
        reply = await self._call(OP_FAULT, encode_fault(add, remove),
                                 OP_FAULT_R)
        return decode_fault_reply(reply)

    async def epoch(self) -> Tuple[int, int]:
        """Current (epoch, fault count) for the bound tenant."""
        reply = await self._call(OP_EPOCH, b"", OP_EPOCH_R)
        return _EPOCH_R.unpack(reply)

    async def close(self) -> None:
        self._closed = True
        self._reader_task.cancel()
        try:
            await self._reader_task
        except asyncio.CancelledError:
            pass
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass

    async def __aenter__(self) -> "WireClient":
        return self

    async def __aexit__(self, *exc) -> None:
        await self.close()
