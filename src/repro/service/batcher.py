"""Micro-batched request aggregation for the routing service.

One route request is a terrible unit of work for the batched kernels: the
vectorized walk amortizes numpy dispatch over thousands of routes, so
answering requests one call at a time pays full per-call overhead for a
single row.  The :class:`MicroBatcher` closes that gap by aggregating
concurrent requests inside a **size/deadline window**:

* the first request of a window starts a deadline clock
  (``window_us``);
* further requests join the window until either the deadline fires or
  ``max_batch`` requests are waiting — whichever comes first flushes;
* a flush hands the whole batch to the service's executor as *one*
  kernel call and immediately starts collecting the next window, so
  batching and kernel execution overlap instead of serializing.

Backpressure is a bounded admission semaphore: at most ``max_pending``
requests may be in flight (queued or executing); ``submit`` awaits
admission, so an overloaded service makes producers wait rather than
growing an unbounded queue.  Requests are never dropped — every admitted
request is resolved with a response or an exception, including during
shutdown (:meth:`drain` flushes stragglers before the service closes).
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Awaitable, Callable, List, Optional

__all__ = ["PendingRequest", "MicroBatcher"]


@dataclass
class PendingRequest:
    """One admitted route request waiting for (or in) a flush."""

    src: int
    dst: int
    enqueued_ns: int
    future: "asyncio.Future" = field(repr=False, default=None)


#: A flush callback: takes the batch, resolves every request's future.
FlushFn = Callable[[List[PendingRequest]], Awaitable[None]]


class MicroBatcher:
    """Size/deadline aggregation in front of an async flush callback.

    ``flush`` receives each batch exactly once and owns resolving the
    futures; the batcher guarantees ordering *within* a batch matches
    submission order (the kernel's row order is the arrival order), and
    that no admitted request is ever abandoned.
    """

    def __init__(
        self,
        flush: FlushFn,
        max_batch: int = 256,
        window_us: int = 500,
        max_pending: int = 32_768,
    ) -> None:
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if window_us < 0:
            raise ValueError(f"window_us must be >= 0, got {window_us}")
        self.max_batch = max_batch
        self.window_us = window_us
        self._queue: List[PendingRequest] = []
        self._admission = asyncio.Semaphore(max_pending)
        self._wakeup = asyncio.Event()
        self._closed = False
        self._flush = flush
        self._inflight: set = set()
        self._collector: Optional[asyncio.Task] = None
        #: Lifetime count of dispatched batches (benchmark batch-size math).
        self.flushes = 0

    # -- intake --------------------------------------------------------------

    async def submit(self, src: int, dst: int) -> object:
        """Admit one request and await its response.

        Raises :class:`RuntimeError` after :meth:`drain` — a closed
        batcher admits nothing, it only finishes what it already holds.
        """
        if self._closed:
            raise RuntimeError("batcher is closed")
        await self._admission.acquire()
        if self._closed:  # closed while waiting for admission
            self._admission.release()
            raise RuntimeError("batcher is closed")
        loop = asyncio.get_running_loop()
        req = PendingRequest(src=int(src), dst=int(dst),
                             enqueued_ns=time.perf_counter_ns(),
                             future=loop.create_future())
        self._queue.append(req)
        if self._collector is None or self._collector.done():
            self._collector = loop.create_task(self._collect())
        elif len(self._queue) >= self.max_batch:
            self._wakeup.set()
        try:
            return await req.future
        finally:
            self._admission.release()

    # -- the window ----------------------------------------------------------

    async def _collect(self) -> None:
        """Run one window: wait for deadline/size, then dispatch the batch.

        A fresh collector task starts with each window's first request,
        so an idle batcher costs nothing and the deadline clock always
        measures from *this* window's opening request.
        """
        if self.window_us and len(self._queue) < self.max_batch:
            self._wakeup.clear()
            try:
                await asyncio.wait_for(self._wakeup.wait(),
                                       timeout=self.window_us / 1e6)
            except asyncio.TimeoutError:
                pass
        batch, self._queue = self._queue[:self.max_batch], \
            self._queue[self.max_batch:]
        if self._queue:
            # Overflow beyond max_batch opens the next window immediately.
            self._collector = asyncio.get_running_loop().create_task(
                self._collect())
        if not batch:
            return
        task = asyncio.get_running_loop().create_task(
            self._run_flush(batch))
        self._inflight.add(task)
        task.add_done_callback(self._inflight.discard)

    async def _run_flush(self, batch: List[PendingRequest]) -> None:
        self.flushes += 1
        try:
            await self._flush(batch)
        except Exception as exc:
            for req in batch:
                if not req.future.done():
                    req.future.set_exception(exc)
        else:
            # The flush owns resolution; an unresolved future here is a
            # service bug, and surfacing it beats hanging the caller.
            for req in batch:
                if not req.future.done():  # pragma: no cover - defensive
                    req.future.set_exception(
                        RuntimeError("flush left a request unresolved"))

    # -- shutdown ------------------------------------------------------------

    async def drain(self) -> None:
        """Stop admitting, flush stragglers, await in-flight batches."""
        self._closed = True
        self._wakeup.set()
        if self._collector is not None and not self._collector.done():
            await self._collector
        while self._queue:
            batch, self._queue = self._queue[:self.max_batch], \
                self._queue[self.max_batch:]
            await self._run_flush(batch)
        while self._inflight:
            await asyncio.gather(*tuple(self._inflight),
                                 return_exceptions=True)
