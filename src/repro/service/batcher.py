"""Micro-batched request aggregation for the routing service.

One route request is a terrible unit of work for the batched kernels: the
vectorized walk amortizes numpy dispatch over thousands of routes, so
answering requests one call at a time pays full per-call overhead for a
single row.  The :class:`MicroBatcher` closes that gap by aggregating
concurrent requests inside a **size/deadline window**:

* the first request of a window starts a deadline clock
  (``window_us``);
* further requests join the window until either the deadline fires or
  ``max_batch`` *rows* are waiting — whichever comes first flushes;
* a flush hands the whole batch to the service's executor as *one*
  kernel call and immediately starts collecting the next window, so
  batching and kernel execution overlap instead of serializing.

Entries come in two shapes.  A **single** is one ``(src, dst)`` pair —
the interactive path.  A **block** is a whole vector of pairs submitted
as one entry with one future (:meth:`submit_block`) — the wire path's
unit, which is what lets a pipelined client push thousands of routes
through the event loop while paying per-*entry* (not per-route) asyncio
overhead.  The window accounting is row-based: a block counts as its row
count, and entries are never split across flushes — a block's response
always comes from exactly one kernel call against exactly one epoch.

Backpressure is a bounded row gate: at most ``max_pending`` rows may be
in flight (queued or executing); ``submit``/``submit_block`` await
admission, so an overloaded service makes producers wait rather than
growing an unbounded queue.  A block larger than the whole gate is
admitted at full-gate cost instead of deadlocking.  Requests are never
dropped — every admitted entry is resolved with a response or an
exception, including during shutdown (:meth:`drain` flushes stragglers
before the service closes) and forced teardown (:meth:`abort` fails
everything still queued, loudly).
"""

from __future__ import annotations

import asyncio
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Awaitable, Callable, Deque, List, Optional

import numpy as np

__all__ = ["PendingRequest", "PendingBlock", "MicroBatcher"]


@dataclass
class PendingRequest:
    """One admitted single-pair request waiting for (or in) a flush."""

    src: int
    dst: int
    enqueued_ns: int
    future: "asyncio.Future" = field(repr=False, default=None)

    @property
    def rows(self) -> int:
        return 1


@dataclass
class PendingBlock:
    """One admitted block of pairs: many rows, one entry, one future."""

    srcs: np.ndarray
    dsts: np.ndarray
    enqueued_ns: int
    future: "asyncio.Future" = field(repr=False, default=None)

    @property
    def rows(self) -> int:
        return len(self.srcs)


#: A flush callback: takes the batch entries, resolves every future.
FlushFn = Callable[[List[object]], Awaitable[None]]


class _RowGate:
    """Bounded counting admission: FIFO waiters, row-denominated.

    ``asyncio.Semaphore`` admits one unit per acquire; blocks need
    many-at-once admission without an O(rows) acquire loop.  Waiters
    park on futures in arrival order and re-check on every release; an
    entry wider than the whole gate is clamped to capacity so it admits
    (alone) rather than deadlocking.
    """

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self._used = 0
        self._waiters: Deque["asyncio.Future"] = deque()

    async def acquire(self, rows: int) -> int:
        """Admit ``rows`` (clamped to capacity); returns the debt to release."""
        rows = min(rows, self.capacity)
        loop = asyncio.get_running_loop()
        while self._used + rows > self.capacity:
            fut = loop.create_future()
            self._waiters.append(fut)
            try:
                await fut
            except asyncio.CancelledError:
                if fut in self._waiters:
                    self._waiters.remove(fut)
                raise
        self._used += rows
        return rows

    def release(self, rows: int) -> None:
        self._used -= rows
        self.wake_all()

    def wake_all(self) -> None:
        """Recheck every waiter (capacity freed, or the batcher closed)."""
        while self._waiters:
            fut = self._waiters.popleft()
            if not fut.done():
                fut.set_result(None)


class MicroBatcher:
    """Size/deadline aggregation in front of an async flush callback.

    ``flush`` receives each batch exactly once and owns resolving the
    futures; the batcher guarantees ordering *within* a batch matches
    submission order (the kernel's row order is the arrival order), and
    that no admitted entry is ever abandoned.
    """

    def __init__(
        self,
        flush: FlushFn,
        max_batch: int = 256,
        window_us: int = 500,
        max_pending: int = 32_768,
    ) -> None:
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if window_us < 0:
            raise ValueError(f"window_us must be >= 0, got {window_us}")
        self.max_batch = max_batch
        self.window_us = window_us
        self._queue: List[object] = []
        self._queued_rows = 0
        self._gate = _RowGate(max_pending)
        self._wakeup = asyncio.Event()
        self._closed = False
        self._abort_exc: Optional[BaseException] = None
        self._flush = flush
        self._inflight: set = set()
        self._collector: Optional[asyncio.Task] = None
        #: Lifetime count of dispatched batches (benchmark batch-size math).
        self.flushes = 0

    @property
    def closed(self) -> bool:
        """True once drained or aborted — nothing more is admitted."""
        return self._closed

    def _refusal(self) -> BaseException:
        """The exception a post-close submit gets.  After :meth:`abort`
        it is a fresh instance of the abort cause, so callers hitting a
        killed shard hear the structured (often retryable) story instead
        of a generic 'closed'."""
        if self._abort_exc is not None:
            try:
                return type(self._abort_exc)(*self._abort_exc.args)
            except Exception:  # exotic exception signature: reuse as-is
                return self._abort_exc
        return RuntimeError("batcher is closed")

    # -- intake --------------------------------------------------------------

    async def _enqueue(self, entry, rows: int) -> object:
        debt = await self._gate.acquire(rows)
        if self._closed:  # closed while waiting for admission
            self._gate.release(debt)
            raise self._refusal()
        loop = asyncio.get_running_loop()
        entry.future = loop.create_future()
        self._queue.append(entry)
        self._queued_rows += rows
        if self._collector is None or self._collector.done():
            self._collector = loop.create_task(self._collect())
        elif self._queued_rows >= self.max_batch:
            self._wakeup.set()
        try:
            return await entry.future
        finally:
            self._gate.release(debt)

    async def submit(self, src: int, dst: int) -> object:
        """Admit one request and await its response.

        Raises :class:`RuntimeError` after :meth:`drain` (or the abort
        cause after :meth:`abort`) — a closed batcher admits nothing, it
        only finishes what it already holds.
        """
        if self._closed:
            raise self._refusal()
        return await self._enqueue(
            PendingRequest(src=int(src), dst=int(dst),
                           enqueued_ns=time.perf_counter_ns()),
            rows=1,
        )

    async def submit_block(self, srcs: np.ndarray, dsts: np.ndarray) -> object:
        """Admit a whole vector of pairs as one entry; await one response.

        ``srcs``/``dsts`` must be equal-length 1-D vectors; empty blocks
        are rejected (nothing to route, and a zero-row entry would admit
        for free).  The flush resolves the block's single future with a
        block-shaped response covering every row.
        """
        if self._closed:
            raise self._refusal()
        srcs = np.ascontiguousarray(np.asarray(srcs, dtype=np.int64).ravel())
        dsts = np.ascontiguousarray(np.asarray(dsts, dtype=np.int64).ravel())
        if len(srcs) != len(dsts):
            raise ValueError(
                f"block vectors differ: {len(srcs)} sources, "
                f"{len(dsts)} destinations"
            )
        if len(srcs) == 0:
            raise ValueError("empty block")
        return await self._enqueue(
            PendingBlock(srcs=srcs, dsts=dsts,
                         enqueued_ns=time.perf_counter_ns()),
            rows=len(srcs),
        )

    # -- the window ----------------------------------------------------------

    def _take_batch(self) -> List[object]:
        """Pop entries for one flush: greedy by rows, entries never split."""
        rows = 0
        count = 0
        for entry in self._queue:
            if count and rows >= self.max_batch:
                break
            rows += entry.rows
            count += 1
        batch, self._queue = self._queue[:count], self._queue[count:]
        self._queued_rows -= rows
        return batch

    async def _collect(self) -> None:
        """Run one window: wait for deadline/size, then dispatch the batch.

        A fresh collector task starts with each window's first entry, so
        an idle batcher costs nothing and the deadline clock always
        measures from *this* window's opening entry.
        """
        if self.window_us and self._queued_rows < self.max_batch:
            self._wakeup.clear()
            try:
                await asyncio.wait_for(self._wakeup.wait(),
                                       timeout=self.window_us / 1e6)
            except asyncio.TimeoutError:
                pass
        batch = self._take_batch()
        if self._queue:
            # Overflow beyond max_batch opens the next window immediately.
            self._collector = asyncio.get_running_loop().create_task(
                self._collect())
        if not batch:
            return
        task = asyncio.get_running_loop().create_task(
            self._run_flush(batch))
        self._inflight.add(task)
        task.add_done_callback(self._inflight.discard)

    async def _run_flush(self, batch: List[object]) -> None:
        self.flushes += 1
        try:
            await self._flush(batch)
        except Exception as exc:
            for req in batch:
                if not req.future.done():
                    req.future.set_exception(exc)
        else:
            # The flush owns resolution; an unresolved future here is a
            # service bug, and surfacing it beats hanging the caller.
            for req in batch:
                if not req.future.done():  # pragma: no cover - defensive
                    req.future.set_exception(
                        RuntimeError("flush left a request unresolved"))

    # -- shutdown ------------------------------------------------------------

    async def drain(self) -> None:
        """Stop admitting, flush stragglers, await in-flight batches."""
        self._closed = True
        self._wakeup.set()
        self._gate.wake_all()
        if self._collector is not None and not self._collector.done():
            await self._collector
        while self._queue:
            await self._run_flush(self._take_batch())
        while self._inflight:
            await asyncio.gather(*tuple(self._inflight),
                                 return_exceptions=True)

    def abort(self, exc: BaseException) -> None:
        """Forced teardown: fail every queued entry with ``exc``, admit
        nothing more.  In-flight flushes are left to finish (they hold
        their own futures); this is the kill-shard path, where queued
        work must fail *loudly* rather than hang or half-route.  The
        cause is remembered: later submits are refused with a fresh
        instance of it, so a request racing a shard kill still hears the
        structured error, not a generic "closed".
        """
        self._closed = True
        self._abort_exc = exc
        self._wakeup.set()
        self._gate.wake_all()
        queue, self._queue = self._queue, []
        self._queued_rows = 0
        for entry in queue:
            if entry.future is not None and not entry.future.done():
                entry.future.set_exception(exc)
