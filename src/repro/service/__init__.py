"""Routing-as-a-service: epochal level caching over the batched kernels.

The paper's argument — safety levels are cheap to maintain and make each
route decision nearly free — has the exact shape of a high-throughput
service, and this package is that service:

* :mod:`repro.service.shm` — immutable, seqlock-tagged shared-memory
  table segments, reseal-able for the warm-spare ring;
* :mod:`repro.service.epoch` — :class:`EpochManager`: incremental
  re-stabilization on fault events, warm-spare sealing off the request
  path, pointer-flip swap, pin-counted ring recycling;
* :mod:`repro.service.batcher` — :class:`MicroBatcher`: size/deadline
  aggregation of concurrent requests (and whole blocks) into single
  kernel calls;
* :mod:`repro.service.workers` — the flat per-batch routing task both
  backends (inline executor and process pool) execute;
* :mod:`repro.service.service` — :class:`RoutingService`, the façade;
* :mod:`repro.service.shard` — :class:`ShardRouter`: many tenant cubes
  multiplexed over a shard pool with consistent-hash placement;
* :mod:`repro.service.wire` — the length-prefixed binary RPC framing
  and its pipelined :class:`WireClient`;
* :mod:`repro.service.server` — the ``repro serve`` TCP front-end
  (binary frames, line-protocol compat shim);
* :mod:`repro.service.bench` — the ``BENCH_service.json`` harness.
"""

from .epoch import EpochManager, EpochSwap, EpochView
from .service import BlockResponse, RoutingService, ServiceConfig, \
    ServiceResponse
from .shard import HashRing, Shard, ShardDownError, ShardRouter, \
    UnknownTenantError
from .shm import EpochTable, TornTableError, attach_epoch_table
from .wire import WireClient, WireError

__all__ = [
    "EpochManager",
    "EpochSwap",
    "EpochView",
    "EpochTable",
    "TornTableError",
    "attach_epoch_table",
    "RoutingService",
    "ServiceConfig",
    "ServiceResponse",
    "BlockResponse",
    "ShardRouter",
    "Shard",
    "HashRing",
    "ShardDownError",
    "UnknownTenantError",
    "WireClient",
    "WireError",
]
