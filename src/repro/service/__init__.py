"""Routing-as-a-service: epochal level caching over the batched kernels.

The paper's argument — safety levels are cheap to maintain and make each
route decision nearly free — has the exact shape of a high-throughput
service, and this package is that service:

* :mod:`repro.service.shm` — immutable, seqlock-tagged shared-memory
  table segments, reseal-able for the warm-spare ring;
* :mod:`repro.service.epoch` — :class:`EpochManager`: incremental
  re-stabilization on fault events, warm-spare sealing off the request
  path, pointer-flip swap, pin-counted ring recycling;
* :mod:`repro.service.batcher` — :class:`MicroBatcher`: size/deadline
  aggregation of concurrent requests (and whole blocks) into single
  kernel calls;
* :mod:`repro.service.workers` — the flat per-batch routing task both
  backends (inline executor and process pool) execute;
* :mod:`repro.service.service` — :class:`RoutingService`, the façade;
* :mod:`repro.service.shard` — :class:`ShardRouter`: many tenant cubes
  multiplexed over a shard pool with consistent-hash placement,
  per-tenant fault journals, admission control, and exact failover of
  a dead shard's tenants onto survivors;
* :mod:`repro.service.health` — :class:`FailureDetector`: heartbeat
  probes driving the alive → suspect → dead state machine, so shard
  death is *inferred*, not only injected;
* :mod:`repro.service.wire` — the length-prefixed binary RPC framing
  and its pipelined :class:`WireClient`;
* :mod:`repro.service.client` — :class:`ResilientClient`: bounded
  backoff-and-jitter retries over the retryable error codes
  (``E_RETRY``/``E_MOVED``/``E_OVERLOAD``), reconnect + tenant rebind;
* :mod:`repro.service.server` — the ``repro serve`` TCP front-end
  (binary frames, line-protocol compat shim);
* :mod:`repro.service.bench` — the ``BENCH_service.json`` harness,
  including the chaos-driven failover soak.
"""

from .client import ResilientClient, RetryPolicy
from .epoch import EpochManager, EpochSwap, EpochView
from .health import FailureDetector, HealthConfig, ShardHealth
from .service import BlockResponse, RoutingService, ServiceConfig, \
    ServiceResponse
from .shard import FailoverReport, HashRing, OverloadError, Shard, \
    ShardDownError, ShardRetryError, ShardRouter, TenantJournal, \
    TenantMovedError, UnknownTenantError
from .shm import EpochTable, TornTableError, attach_epoch_table
from .wire import WireClient, WireError

__all__ = [
    "EpochManager",
    "EpochSwap",
    "EpochView",
    "EpochTable",
    "TornTableError",
    "attach_epoch_table",
    "RoutingService",
    "ServiceConfig",
    "ServiceResponse",
    "BlockResponse",
    "ShardRouter",
    "Shard",
    "HashRing",
    "TenantJournal",
    "FailoverReport",
    "ShardDownError",
    "ShardRetryError",
    "TenantMovedError",
    "OverloadError",
    "UnknownTenantError",
    "FailureDetector",
    "HealthConfig",
    "ShardHealth",
    "ResilientClient",
    "RetryPolicy",
    "WireClient",
    "WireError",
]
