"""Routing-as-a-service: epochal level caching over the batched kernels.

The paper's argument — safety levels are cheap to maintain and make each
route decision nearly free — has the exact shape of a high-throughput
service, and this package is that service:

* :mod:`repro.service.shm` — immutable, seqlock-tagged shared-memory
  table segments, one per fault epoch;
* :mod:`repro.service.epoch` — :class:`EpochManager`: incremental
  re-stabilization on fault events, publish, atomic swap, pin-counted
  retirement of old segments;
* :mod:`repro.service.batcher` — :class:`MicroBatcher`: size/deadline
  aggregation of concurrent requests into single kernel calls;
* :mod:`repro.service.workers` — the flat per-batch routing task both
  backends (inline executor and process pool) execute;
* :mod:`repro.service.service` — :class:`RoutingService`, the façade;
* :mod:`repro.service.server` — the ``repro serve`` TCP line protocol;
* :mod:`repro.service.bench` — the ``BENCH_service.json`` harness.
"""

from .epoch import EpochManager, EpochSwap, EpochView
from .service import RoutingService, ServiceConfig, ServiceResponse
from .shm import EpochTable, TornTableError, attach_epoch_table

__all__ = [
    "EpochManager",
    "EpochSwap",
    "EpochView",
    "EpochTable",
    "TornTableError",
    "attach_epoch_table",
    "RoutingService",
    "ServiceConfig",
    "ServiceResponse",
]
