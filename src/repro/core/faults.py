"""Fault sets: which nodes and links of a topology have failed.

The paper's fault model (Section 1 assumptions): node faults are
*fail-stop*, fault detection exists, and every node knows the exact status
of its neighbors.  Section 4.1 adds *link* faults, which a node can
distinguish from a faulty neighbor.

A :class:`FaultSet` is immutable so that one instance can be shared by the
oracle analyses, the vectorized kernels, and the simulator without defensive
copies.  Links are stored as normalized ``(lo, hi)`` node pairs.
"""

from __future__ import annotations

from typing import AbstractSet, FrozenSet, Iterable, List, Tuple

import numpy as np

from .topology import Topology

__all__ = ["FaultSet", "normalize_link"]

Link = Tuple[int, int]


def normalize_link(a: int, b: int) -> Link:
    """Canonical undirected-link key: endpoints sorted ascending."""
    if a == b:
        raise ValueError(f"a link needs two distinct endpoints, got ({a}, {b})")
    return (a, b) if a < b else (b, a)


class FaultSet:
    """An immutable set of faulty nodes and faulty links.

    Parameters
    ----------
    nodes:
        Iterable of faulty node ids.
    links:
        Iterable of faulty links, each an ``(a, b)`` endpoint pair in either
        order.  A link whose endpoint is itself faulty is redundant (a
        fail-stop node takes all its links down) but is accepted and
        normalized away by :meth:`effective_links`.
    """

    __slots__ = ("_nodes", "_links")

    def __init__(
        self,
        nodes: Iterable[int] = (),
        links: Iterable[Tuple[int, int]] = (),
    ) -> None:
        self._nodes: FrozenSet[int] = frozenset(int(v) for v in nodes)
        self._links: FrozenSet[Link] = frozenset(
            normalize_link(int(a), int(b)) for a, b in links
        )

    # -- constructors ---------------------------------------------------------

    @classmethod
    def empty(cls) -> "FaultSet":
        """The fault-free configuration."""
        return cls()

    @classmethod
    def from_addresses(cls, topo: Topology, addresses: Iterable[str]) -> "FaultSet":
        """Build a node-fault set from address strings (``'0110'`` style)."""
        parse = getattr(topo, "parse_node")
        return cls(nodes=[parse(a) for a in addresses])

    def with_nodes(self, extra: Iterable[int]) -> "FaultSet":
        """A new fault set with additional faulty nodes."""
        return FaultSet(self._nodes | set(extra), self._links)

    def with_links(self, extra: Iterable[Tuple[int, int]]) -> "FaultSet":
        """A new fault set with additional faulty links."""
        return FaultSet(self._nodes, set(self._links) | {
            normalize_link(a, b) for a, b in extra
        })

    # -- membership -----------------------------------------------------------

    @property
    def nodes(self) -> FrozenSet[int]:
        """Faulty node ids."""
        return self._nodes

    @property
    def links(self) -> FrozenSet[Link]:
        """Faulty links as normalized endpoint pairs (as declared)."""
        return self._links

    def is_node_faulty(self, node: int) -> bool:
        return node in self._nodes

    def is_link_faulty(self, a: int, b: int) -> bool:
        """True if the ``a``–``b`` link cannot carry traffic.

        A link is unusable if it was declared faulty *or* either endpoint
        node is faulty (fail-stop nodes take their links with them).
        """
        return (
            a in self._nodes
            or b in self._nodes
            or normalize_link(a, b) in self._links
        )

    def is_link_declared_faulty(self, a: int, b: int) -> bool:
        """True only for links explicitly in the fault set (Section 4.1
        distinguishes these from links lost to a faulty endpoint)."""
        return normalize_link(a, b) in self._links

    @property
    def num_node_faults(self) -> int:
        return len(self._nodes)

    @property
    def num_link_faults(self) -> int:
        return len(self._links)

    @property
    def has_link_faults(self) -> bool:
        return bool(self._links)

    def __bool__(self) -> bool:
        return bool(self._nodes or self._links)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, FaultSet)
            and other._nodes == self._nodes
            and other._links == self._links
        )

    def __hash__(self) -> int:
        return hash((self._nodes, self._links))

    # -- derived views ----------------------------------------------------------

    def validate(self, topo: Topology) -> None:
        """Check every fault refers to a real node/link of ``topo``."""
        for v in self._nodes:
            topo.validate_node(v)
        for a, b in self._links:
            topo.validate_node(a)
            topo.validate_node(b)
            if b not in topo.neighbors(a):
                raise ValueError(
                    f"({topo.format_node(a)}, {topo.format_node(b)}) "
                    "is not a link of the topology"
                )

    def effective_links(self) -> FrozenSet[Link]:
        """Declared faulty links between two *nonfaulty* endpoints.

        These are the links that matter for Section 4.1: a declared-faulty
        link with a faulty endpoint behaves identically to the node fault
        alone.
        """
        return frozenset(
            (a, b)
            for a, b in self._links
            if a not in self._nodes and b not in self._nodes
        )

    def nonfaulty_nodes(self, topo: Topology) -> List[int]:
        """All node ids of ``topo`` not in the fault set, ascending."""
        return [v for v in topo.iter_nodes() if v not in self._nodes]

    def node_mask(self, num_nodes: int) -> np.ndarray:
        """Boolean vector, ``True`` at faulty node ids."""
        mask = np.zeros(num_nodes, dtype=bool)
        if self._nodes:
            idx = np.fromiter(self._nodes, dtype=np.int64, count=len(self._nodes))
            if idx.min() < 0 or idx.max() >= num_nodes:
                raise ValueError("faulty node id out of range")
            mask[idx] = True
        return mask

    def nodes_with_faulty_links(self, topo: Topology) -> FrozenSet[int]:
        """Nonfaulty nodes adjacent to at least one declared-faulty link.

        This is the paper's set ``N2`` (Section 4.1); ``N1`` is every other
        nonfaulty node.
        """
        out = set()
        for a, b in self.effective_links():
            out.add(a)
            out.add(b)
        return frozenset(out)

    def describe(self, topo: Topology) -> str:
        """Readable one-line summary using topology address formatting."""
        nodes = ", ".join(sorted(topo.format_node(v) for v in self._nodes))
        links = ", ".join(
            sorted(
                f"{topo.format_node(a)}-{topo.format_node(b)}"
                for a, b in self._links
            )
        )
        parts = []
        parts.append(f"faulty nodes: {{{nodes}}}" if nodes else "no faulty nodes")
        if links:
            parts.append(f"faulty links: {{{links}}}")
        return "; ".join(parts)

    def __repr__(self) -> str:
        return (
            f"FaultSet(nodes={sorted(self._nodes)!r}, "
            f"links={sorted(self._links)!r})"
        )
