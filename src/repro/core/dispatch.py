"""Kernel-selection plumbing shared by every dispatch seam.

Two hot paths ship multiple interchangeable kernels: the batched routing
walk (``REPRO_ROUTE_KERNEL`` / ``--route-kernel``) and the batched
safety-level fixed point (``REPRO_LEVEL_KERNEL`` / ``--level-kernel``).
Both resolve a kernel name the same way —

1. an explicit ``kernel=`` argument wins,
2. else the seam's environment variable,
3. else the seam's default —

and both must reject unknown names with an error that says which knob was
consulted and what the valid choices are.  This helper is that one rule;
the seams layer their own semantics (e.g. ``tie_break="random"`` forcing
the scalar routing kernel, ``auto`` level-kernel shape selection) on top
of the validated name it returns.
"""

from __future__ import annotations

import logging
import os
from typing import Optional, Sequence

__all__ = ["resolve_kernel_name"]

logger = logging.getLogger("repro.dispatch")


def resolve_kernel_name(
    env_var: str,
    valid: Sequence[str],
    explicit: Optional[str],
    default: str,
    what: str = "kernel",
) -> str:
    """The kernel name a dispatch seam should use, validated.

    ``explicit`` (a caller's ``kernel=`` argument) takes precedence over
    the ``env_var`` environment variable, which takes precedence over
    ``default``.  When *both* are set to different names the explicit
    argument wins regardless of either value's validity — the environment
    value is never consulted, not even as a fallback for an unknown
    explicit name — and the losing source is reported: a debug log line
    on the happy path, a clause in the :class:`ValueError` on the error
    path.  Errors name the seam (``what``), the offending source, the
    unknown name, and the recognized choices — the "informative error for
    unknown kernel names" contract shared by every seam.
    """
    source = "kernel argument"
    ignored = ""
    name = explicit
    env = os.environ.get(env_var, "").strip()
    if name is None:
        if env:
            source = f"${env_var}"
            name = env
        else:
            name = default
    elif env and env != explicit:
        # Both knobs set and disagreeing: the argument wins, but say so —
        # silently shadowed environment values are how A/B runs go wrong.
        ignored = f"; ignoring ${env_var}={env!r} (kernel argument wins)"
        logger.debug(
            "%s resolution: kernel argument %r overrides $%s=%r",
            what, explicit, env_var, env,
        )
    if name not in valid:
        raise ValueError(
            f"unknown {what} {name!r} from {source} "
            f"(expected one of {tuple(valid)}){ignored}"
        )
    return name
