"""Node-disjoint optimal paths and optimal-path counting.

Two classic hypercube facts this module makes executable:

* **Disjoint paths** — between nodes at Hamming distance ``j`` there exist
  exactly ``j`` node-disjoint optimal paths (used by the paper in the
  proof of Theorem 2).  :func:`disjoint_optimal_paths` builds them with
  the rotation construction: path ``i`` crosses the preferred dimensions
  in the cyclic order ``d_i, d_{i+1}, ..., d_{i-1}``.  Internal nodes of
  different rotations never coincide (they disagree on which prefix of
  the preferred dimensions has been crossed).
* **Path counting** — :func:`count_optimal_paths` counts fault-free
  optimal paths by dynamic programming over the subcube between the
  endpoints (``H!`` of them in a fault-free cube).  The count is the
  *optimal-path diversity* of a pair: 0 iff no optimal path survives,
  which cross-checks the oracle's reach-radius computation.
"""

from __future__ import annotations

from math import factorial
from typing import Dict, List

from .faults import FaultSet
from .hypercube import Hypercube

__all__ = [
    "disjoint_optimal_paths",
    "verify_node_disjoint",
    "count_optimal_paths",
]


def disjoint_optimal_paths(topo: Hypercube, source: int,
                           dest: int) -> List[List[int]]:
    """The ``H(s, d)`` pairwise node-disjoint optimal paths (fault-free).

    Rotation ``i`` crosses preferred dimensions in cyclic order starting
    at the i-th one.  Returns an empty list for ``source == dest``.
    """
    topo.validate_node(source)
    topo.validate_node(dest)
    dims = topo.differing_dimensions(source, dest)
    paths: List[List[int]] = []
    for i in range(len(dims)):
        order = dims[i:] + dims[:i]
        node = source
        path = [node]
        for dim in order:
            node = topo.neighbor_along(node, dim)
            path.append(node)
        paths.append(path)
    return paths


def verify_node_disjoint(paths: List[List[int]]) -> bool:
    """True iff the paths share no nodes besides their endpoints."""
    if not paths:
        return True
    seen: Dict[int, int] = {}
    for idx, path in enumerate(paths):
        for node in path[1:-1]:
            if node in seen and seen[node] != idx:
                return False
            seen[node] = idx
    return True


def count_optimal_paths(topo: Hypercube, faults: FaultSet, source: int,
                        dest: int) -> int:
    """Number of fault-free Hamming-length paths from ``source`` to
    ``dest``.

    DP over the subcube spanned by the preferred dimensions: every optimal
    path stays inside it, and the count at a node is the sum over its
    healthy preferred successors.  ``H!`` without faults; ``0`` iff no
    optimal path survives.  A faulty endpoint yields 0.
    """
    topo.validate_node(source)
    topo.validate_node(dest)
    if faults.is_node_faulty(source) or faults.is_node_faulty(dest):
        return 0
    if source == dest:
        return 1
    dims = topo.differing_dimensions(source, dest)
    h = len(dims)

    # Enumerate subcube members grouped by distance-to-go; memo maps a
    # member to its surviving-path count toward dest.
    memo: Dict[int, int] = {dest: 1}

    def paths_from(node: int) -> int:
        if node in memo:
            return memo[node]
        if faults.is_node_faulty(node):
            memo[node] = 0
            return 0
        total = 0
        for dim in topo.differing_dimensions(node, dest):
            nxt = topo.neighbor_along(node, dim)
            if faults.is_node_faulty(nxt):
                continue
            if faults.is_link_faulty(node, nxt):
                continue
            total += paths_from(nxt)
        memo[node] = total
        return total

    count = paths_from(source)
    assert count <= factorial(h)
    return count
