"""Seeded fault-pattern generators for Monte-Carlo experiments.

The paper evaluates over "various numbers of faults" placed at random
(Fig. 2) and over hand-crafted disconnecting patterns (Fig. 3).  This module
provides the corresponding generators plus a few stress models:

* :func:`uniform_node_faults` — f faulty nodes uniform without replacement
  (the Fig. 2 workload).
* :func:`uniform_link_faults` / :func:`mixed_faults` — Section 4.1 workloads.
* :func:`clustered_node_faults` — faults grown around a seed node; high
  spatial correlation is the hard case for neighborhood-counting schemes.
* :func:`isolating_faults` — surround a victim node to disconnect it: the
  minimal disconnected-hypercube instance (Section 3.3).
* :func:`subcube_faults` — kill an entire subcube.
* :func:`FaultSchedule` — a timeline of fault arrivals/recoveries for the
  dynamic-update policies of Section 2.2.

All generators take a ``numpy.random.Generator`` (or an int seed) and are
deterministic given it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from .faults import FaultSet, normalize_link
from .topology import Topology

__all__ = [
    "as_rng",
    "uniform_node_faults",
    "uniform_node_fault_masks",
    "uniform_link_faults",
    "mixed_faults",
    "clustered_node_faults",
    "isolating_faults",
    "subcube_faults",
    "FaultEvent",
    "FaultSchedule",
    "random_fault_schedule",
]

RngLike = Union[int, np.random.Generator, None]


def as_rng(rng: RngLike) -> np.random.Generator:
    """Normalize an int seed / Generator / None into a Generator."""
    if isinstance(rng, np.random.Generator):
        return rng
    return np.random.default_rng(rng)


def _check_count(requested: int, available: int, what: str) -> None:
    if requested < 0:
        raise ValueError(f"cannot draw a negative number of {what}")
    if requested > available:
        raise ValueError(
            f"requested {requested} {what} but only {available} exist"
        )


def uniform_node_faults(
    topo: Topology,
    count: int,
    rng: RngLike = None,
    exclude: Iterable[int] = (),
) -> FaultSet:
    """``count`` faulty nodes, uniform without replacement.

    ``exclude`` protects given nodes (e.g. a fixed source/destination pair)
    from being selected.
    """
    gen = as_rng(rng)
    excluded = set(exclude)
    pool = np.array(
        [v for v in topo.iter_nodes() if v not in excluded], dtype=np.int64
    )
    _check_count(count, pool.size, "node faults")
    chosen = gen.choice(pool, size=count, replace=False) if count else []
    return FaultSet(nodes=[int(v) for v in chosen])


def uniform_node_fault_masks(
    topo: Topology,
    count: int,
    rngs: Iterable[np.random.Generator],
) -> np.ndarray:
    """Boolean fault-mask matrix for many trials, one rng stream per row.

    Row ``i`` is bit-identical to
    ``uniform_node_faults(topo, count, rng_i).node_mask(topo.num_nodes)``
    — the same single ``choice`` draw from the same stream — but skips the
    ``FaultSet``/frozenset round trip per trial, which dominates setup time
    when the levels themselves come from the batched kernel.
    """
    num_nodes = topo.num_nodes
    pool = np.array(list(topo.iter_nodes()), dtype=np.int64)
    _check_count(count, pool.size, "node faults")
    rows = list(rngs)
    masks = np.zeros((len(rows), num_nodes), dtype=bool)
    if not count:
        return masks
    # ``choice(k, ...)`` consumes the stream exactly like
    # ``choice(arange(k), ...)`` (asserted in the test suite), so when the
    # node pool is the identity enumeration — every standard topology —
    # skip the array-pool dispatch inside ``Generator.choice``.
    identity_pool = pool.size == num_nodes and pool[0] == 0 and \
        pool[-1] == num_nodes - 1 and np.array_equal(
            pool, np.arange(num_nodes, dtype=np.int64))
    chosen = np.empty((len(rows), count), dtype=np.int64)
    for i, rng in enumerate(rows):
        gen = as_rng(rng)
        if identity_pool:
            chosen[i] = gen.choice(num_nodes, size=count, replace=False)
        else:
            chosen[i] = gen.choice(pool, size=count, replace=False)
    masks[np.repeat(np.arange(len(rows)), count), chosen.ravel()] = True
    return masks


def uniform_link_faults(
    topo: Topology,
    count: int,
    rng: RngLike = None,
) -> FaultSet:
    """``count`` faulty links, uniform without replacement over all links."""
    gen = as_rng(rng)
    links = list(topo.edges())
    _check_count(count, len(links), "link faults")
    idx = gen.choice(len(links), size=count, replace=False) if count else []
    return FaultSet(links=[links[int(i)] for i in idx])


def mixed_faults(
    topo: Topology,
    node_count: int,
    link_count: int,
    rng: RngLike = None,
) -> FaultSet:
    """Independent uniform node faults plus link faults.

    Only links between surviving nodes are candidates, so every declared
    link fault is *effective* in the Section 4.1 sense.
    """
    gen = as_rng(rng)
    nodes = uniform_node_faults(topo, node_count, gen).nodes
    links = [
        (a, b)
        for a, b in topo.edges()
        if a not in nodes and b not in nodes
    ]
    _check_count(link_count, len(links), "link faults")
    idx = gen.choice(len(links), size=link_count, replace=False) if link_count else []
    return FaultSet(nodes=nodes, links=[links[int(i)] for i in idx])


def clustered_node_faults(
    topo: Topology,
    count: int,
    rng: RngLike = None,
    seed_node: Optional[int] = None,
) -> FaultSet:
    """``count`` faults grown as a connected-ish cluster around a seed.

    Growth repeatedly picks a random neighbor of the current cluster; this
    concentrates damage in one neighborhood, which depresses safety levels
    locally far more than uniform placement does — the adversarial regime
    for Definitions 2 and 3.
    """
    gen = as_rng(rng)
    _check_count(count, topo.num_nodes, "node faults")
    if count == 0:
        return FaultSet()
    if seed_node is None:
        seed_node = int(gen.integers(topo.num_nodes))
    topo.validate_node(seed_node)
    cluster = {seed_node}
    frontier = set(topo.neighbors(seed_node))
    while len(cluster) < count:
        if not frontier:
            # Cluster swallowed its whole component; restart elsewhere.
            rest = [v for v in topo.iter_nodes() if v not in cluster]
            seed2 = int(rest[int(gen.integers(len(rest)))])
            frontier = {seed2}
        pick = sorted(frontier)[int(gen.integers(len(frontier)))]
        frontier.discard(pick)
        cluster.add(pick)
        frontier.update(v for v in topo.neighbors(pick) if v not in cluster)
    return FaultSet(nodes=cluster)


def isolating_faults(
    topo: Topology,
    victim: Optional[int] = None,
    rng: RngLike = None,
    spare_faults: int = 0,
) -> FaultSet:
    """Kill every neighbor of ``victim``, disconnecting it from the cube.

    This is the canonical minimal *disconnected hypercube*: ``n`` faults in
    an n-cube leave ``victim`` alive but unreachable.  ``spare_faults``
    additional uniform faults can be layered on top (never on the victim).
    """
    gen = as_rng(rng)
    if victim is None:
        victim = int(gen.integers(topo.num_nodes))
    topo.validate_node(victim)
    nodes = set(topo.neighbors(victim))
    if spare_faults:
        pool = [
            v
            for v in topo.iter_nodes()
            if v != victim and v not in nodes
        ]
        _check_count(spare_faults, len(pool), "spare faults")
        extra = gen.choice(np.array(pool, dtype=np.int64), size=spare_faults,
                           replace=False)
        nodes.update(int(v) for v in extra)
    return FaultSet(nodes=nodes)


def subcube_faults(
    topo: Topology,
    pinned_dims: Sequence[Tuple[int, int]],
) -> FaultSet:
    """Fail an entire subcube of a binary hypercube.

    ``pinned_dims`` is a list of ``(dimension, bit)`` pairs defining the
    subcube.  Requires a binary-cube topology (uses bit semantics).
    """
    from . import bits  # local import to keep module load light

    n = topo.dimension
    members = list(bits.iter_subcube(pinned_dims, n))
    for v in members:
        topo.validate_node(v)
    return FaultSet(nodes=members)


# ---------------------------------------------------------------------------
# Dynamic fault timelines (Section 2.2 update policies)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class FaultEvent:
    """One change of a node's health at an integer time step."""

    time: int
    node: int
    #: True for a new failure, False for a recovery.
    fails: bool

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError("event time must be nonnegative")


@dataclass
class FaultSchedule:
    """A timeline of node failures/recoveries applied to a base fault set.

    Used by the dynamic-update experiments: the safety-level layer re-runs
    GS after each event (state-change-driven policy) or on a fixed cadence
    (periodic policy), and the experiment compares message costs.
    """

    base: FaultSet
    events: List[FaultEvent] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.events = sorted(self.events, key=lambda e: (e.time, e.node))

    @property
    def horizon(self) -> int:
        """Last event time (0 for an empty schedule)."""
        return self.events[-1].time if self.events else 0

    def at(self, time: int) -> FaultSet:
        """Fault set in effect after all events with ``event.time <= time``."""
        nodes = set(self.base.nodes)
        for ev in self.events:
            if ev.time > time:
                break
            if ev.fails:
                nodes.add(ev.node)
            else:
                nodes.discard(ev.node)
        return FaultSet(nodes=nodes, links=self.base.links)

    def change_times(self) -> List[int]:
        """Distinct event times, ascending."""
        return sorted({ev.time for ev in self.events})


def random_fault_schedule(
    topo: Topology,
    horizon: int,
    failure_rate: float,
    recovery_rate: float = 0.0,
    rng: RngLike = None,
) -> FaultSchedule:
    """Poisson-ish random failure/recovery timeline.

    At each integer step every healthy node fails with ``failure_rate`` and
    every failed node recovers with ``recovery_rate`` (independent
    Bernoulli draws).  Rates must be small for the result to resemble the
    paper's sparse-fault regime.
    """
    if horizon < 0:
        raise ValueError("horizon must be nonnegative")
    for name, rate in (("failure_rate", failure_rate),
                       ("recovery_rate", recovery_rate)):
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"{name} must be a probability, got {rate}")
    gen = as_rng(rng)
    healthy = set(topo.iter_nodes())
    failed: set = set()
    events: List[FaultEvent] = []
    for t in range(1, horizon + 1):
        for v in sorted(healthy):
            if gen.random() < failure_rate:
                events.append(FaultEvent(time=t, node=v, fails=True))
        for v in sorted(failed):
            if recovery_rate and gen.random() < recovery_rate:
                events.append(FaultEvent(time=t, node=v, fails=False))
        for ev in events:
            if ev.time != t:
                continue
            if ev.fails:
                healthy.discard(ev.node)
                failed.add(ev.node)
            else:
                failed.discard(ev.node)
                healthy.add(ev.node)
    return FaultSchedule(base=FaultSet(), events=events)
