"""Abstract topology protocol shared by the binary and generalized cubes.

The routing and safety-level machinery is written against this small
interface so the same code paths serve ``Hypercube`` and
``GeneralizedHypercube``.  A *topology* is a static, fault-free graph; fault
information lives separately in :class:`repro.core.faults.FaultSet` so one
topology object can be shared across thousands of Monte-Carlo trials.
"""

from __future__ import annotations

import abc
from typing import Iterable, List, Sequence

__all__ = ["Topology"]


class Topology(abc.ABC):
    """A node-symmetric, dimension-structured interconnect.

    Nodes are integers in ``[0, num_nodes)``.  Every topology organizes its
    links into ``dimension`` *dimensions*; two nodes are adjacent iff their
    addresses differ in exactly one dimension (in the generalized cube, a
    dimension is a complete graph over the radix of that coordinate).
    """

    # -- size ---------------------------------------------------------------

    @property
    @abc.abstractmethod
    def num_nodes(self) -> int:
        """Total number of nodes."""

    @property
    @abc.abstractmethod
    def dimension(self) -> int:
        """Number of dimensions ``n``."""

    # -- adjacency ----------------------------------------------------------

    @abc.abstractmethod
    def neighbors(self, node: int) -> List[int]:
        """All neighbors of ``node`` (all dimensions, dimension-major order)."""

    @abc.abstractmethod
    def neighbors_along(self, node: int, dim: int) -> List[int]:
        """Neighbors of ``node`` along dimension ``dim``.

        Exactly one node for the binary cube; ``m_dim - 1`` nodes for the
        generalized cube.
        """

    @abc.abstractmethod
    def degree(self, node: int) -> int:
        """Number of incident links of ``node``."""

    # -- metric -------------------------------------------------------------

    @abc.abstractmethod
    def distance(self, a: int, b: int) -> int:
        """Graph distance (number of differing dimensions/coordinates)."""

    @abc.abstractmethod
    def differing_dimensions(self, a: int, b: int) -> List[int]:
        """Dimensions in which ``a`` and ``b`` differ — the preferred
        dimensions of a unicast from ``a`` to ``b``."""

    @abc.abstractmethod
    def step_toward(self, node: int, dest: int, dim: int) -> int:
        """The neighbor of ``node`` along ``dim`` that matches ``dest``'s
        coordinate in that dimension.

        For a binary cube this is just the single neighbor along ``dim``;
        for the generalized cube the dimension group is a complete graph so
        the destination coordinate is reached in one hop.
        """

    # -- housekeeping ---------------------------------------------------------

    def validate_node(self, node: int) -> None:
        """Raise ``ValueError`` if ``node`` is not a valid address."""
        if not 0 <= node < self.num_nodes:
            raise ValueError(
                f"node {node} out of range for topology with "
                f"{self.num_nodes} nodes"
            )

    def iter_nodes(self) -> Iterable[int]:
        """Iterate all node ids."""
        return range(self.num_nodes)

    def edges(self) -> Iterable[tuple[int, int]]:
        """Iterate each undirected link once, as ``(lo, hi)`` pairs."""
        for u in self.iter_nodes():
            for v in self.neighbors(u):
                if u < v:
                    yield (u, v)

    # -- naming, used by traces and error messages ---------------------------

    @abc.abstractmethod
    def format_node(self, node: int) -> str:
        """Human-readable address string (e.g. ``'0110'`` or ``'(1,2,0)'``)."""

    def format_path(self, path: Sequence[int]) -> str:
        """Render a node path the way the paper prints routes."""
        return " -> ".join(self.format_node(p) for p in path)
