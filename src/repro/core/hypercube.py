"""The binary n-cube ``Q_n``.

``Hypercube(n)`` is the topology the paper's core results are stated for:
``2**n`` nodes, two nodes adjacent iff their addresses differ in exactly one
bit.  The class is immutable and cheap to share; the per-instance
``neighbor_table()`` is cached because the vectorized safety-level kernel
gathers through it every round.
"""

from __future__ import annotations

from functools import lru_cache
from typing import List

import numpy as np

from . import bits
from .topology import Topology

__all__ = ["Hypercube", "neighbor_table"]


@lru_cache(maxsize=None)
def neighbor_table(n: int) -> np.ndarray:
    """The read-only ``(2**n, n)`` XOR index matrix of an ``n``-cube.

    ``neighbor_table(n)[a, i] == a ^ (1 << i)`` — the address of ``a``'s
    neighbor along dimension ``i``.  Both vectorized kernels gather
    through this table every sweep/hop (the safety-level fixed point in
    :mod:`repro.safety.levels` and the batched routing walk in
    :mod:`repro.routing.batch`), so it is built once per dimension and
    cached for the life of the process; callers must treat it as
    immutable shared state.
    """
    table = bits.neighbor_table(n)
    table.setflags(write=False)
    return table


class Hypercube(Topology):
    """The ``n``-dimensional binary hypercube.

    Parameters
    ----------
    n:
        Cube dimension; must satisfy ``1 <= n <= bits.MAX_DIMENSION``.

    Examples
    --------
    >>> q3 = Hypercube(3)
    >>> q3.neighbors(0b101)
    [4, 7, 1]
    >>> q3.distance(0b000, 0b110)
    2
    """

    __slots__ = ("_n",)

    def __init__(self, n: int) -> None:
        if not 1 <= n <= bits.MAX_DIMENSION:
            raise ValueError(
                f"hypercube dimension must be in [1, {bits.MAX_DIMENSION}], got {n}"
            )
        self._n = n

    # -- size ---------------------------------------------------------------

    @property
    def num_nodes(self) -> int:
        return 1 << self._n

    @property
    def dimension(self) -> int:
        return self._n

    # -- adjacency ----------------------------------------------------------

    def neighbors(self, node: int) -> List[int]:
        self.validate_node(node)
        return bits.neighbors_of(node, self._n)

    def neighbors_along(self, node: int, dim: int) -> List[int]:
        self.validate_node(node)
        self._validate_dim(dim)
        return [node ^ (1 << dim)]

    def neighbor_along(self, node: int, dim: int) -> int:
        """The single neighbor along ``dim`` (binary-cube convenience)."""
        self.validate_node(node)
        self._validate_dim(dim)
        return node ^ (1 << dim)

    def degree(self, node: int) -> int:
        self.validate_node(node)
        return self._n

    # -- metric -------------------------------------------------------------

    def distance(self, a: int, b: int) -> int:
        self.validate_node(a)
        self.validate_node(b)
        return bits.hamming(a, b)

    def differing_dimensions(self, a: int, b: int) -> List[int]:
        self.validate_node(a)
        self.validate_node(b)
        return bits.preferred_dimensions(a, b, self._n)

    def spare_dimensions(self, a: int, b: int) -> List[int]:
        """Dimensions in which ``a`` and ``b`` agree (see the C3 rule)."""
        self.validate_node(a)
        self.validate_node(b)
        return bits.spare_dimensions(a, b, self._n)

    def step_toward(self, node: int, dest: int, dim: int) -> int:
        self.validate_node(node)
        self.validate_node(dest)
        self._validate_dim(dim)
        return (node & ~(1 << dim)) | (dest & (1 << dim))

    # -- vectorized views -----------------------------------------------------

    def neighbor_table(self) -> np.ndarray:
        """Read-only ``(2**n, n)`` matrix of neighbor addresses.

        ``table[a, i] == a ^ (1 << i)``; shared across instances of the
        same dimension (see the module-level :func:`neighbor_table`).
        """
        return neighbor_table(self._n)

    def all_nodes(self) -> np.ndarray:
        """All addresses as an int64 vector (for vectorized sweeps)."""
        return bits.all_addresses(self._n)

    # -- naming ---------------------------------------------------------------

    def format_node(self, node: int) -> str:
        return bits.format_address(node, self._n)

    def parse_node(self, text: str) -> int:
        """Parse an address string like ``'0110'`` and range-check it."""
        node = bits.parse_address(text)
        self.validate_node(node)
        return node

    # -- dunder ---------------------------------------------------------------

    def _validate_dim(self, dim: int) -> None:
        if not 0 <= dim < self._n:
            raise ValueError(f"dimension {dim} out of range for Q{self._n}")

    def __repr__(self) -> str:
        return f"Hypercube(n={self._n})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Hypercube) and other._n == self._n

    def __hash__(self) -> int:
        return hash(("Hypercube", self._n))
