"""Oracle-view connectivity analysis of the surviving subgraph.

The routing algorithms under study use only *local* or *limited-global*
information; this module is the omniscient referee used by experiments and
tests to classify instances (connected vs disconnected), to decide ground
truth reachability, and to compute true shortest paths in the faulty cube.

Implementation notes: components are found with an iterative BFS over the
nonfaulty subgraph; distances-from-source uses a vectorized frontier
expansion when the topology exposes a neighbor table (binary cubes) and a
deque BFS otherwise.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Sequence

import numpy as np

from .faults import FaultSet
from .topology import Topology

__all__ = [
    "components",
    "is_connected",
    "same_component",
    "component_of",
    "bfs_distances",
    "shortest_path",
    "reachable_set",
]

UNREACHABLE = -1


def components(topo: Topology, faults: FaultSet) -> List[List[int]]:
    """Connected components of the nonfaulty subgraph, each sorted.

    Faulty nodes belong to no component.  Components are returned in order
    of their smallest member, so results are deterministic.
    """
    seen = faults.node_mask(topo.num_nodes).copy()
    comps: List[List[int]] = []
    for start in topo.iter_nodes():
        if seen[start]:
            continue
        comp = []
        queue = deque([start])
        seen[start] = True
        while queue:
            u = queue.popleft()
            comp.append(u)
            for v in topo.neighbors(u):
                if not seen[v] and not faults.is_link_faulty(u, v):
                    seen[v] = True
                    queue.append(v)
        comps.append(sorted(comp))
    return comps


def is_connected(topo: Topology, faults: FaultSet) -> bool:
    """True iff all nonfaulty nodes form a single component.

    A cube whose nonfaulty nodes are split into two or more parts is the
    paper's *disconnected hypercube* (Section 3.3).  A fully faulty cube is
    vacuously connected.
    """
    return len(components(topo, faults)) <= 1


def component_of(topo: Topology, faults: FaultSet, node: int) -> List[int]:
    """Sorted component containing ``node`` (empty if ``node`` is faulty)."""
    topo.validate_node(node)
    if faults.is_node_faulty(node):
        return []
    return sorted(reachable_set(topo, faults, node))


def same_component(topo: Topology, faults: FaultSet, a: int, b: int) -> bool:
    """Ground-truth deliverability: a fault-free path from ``a`` to ``b``
    exists."""
    if faults.is_node_faulty(a) or faults.is_node_faulty(b):
        return False
    if a == b:
        return True
    dist = bfs_distances(topo, faults, a)
    return dist[b] != UNREACHABLE


def reachable_set(topo: Topology, faults: FaultSet, source: int) -> set:
    """All nonfaulty nodes reachable from ``source`` (including itself)."""
    dist = bfs_distances(topo, faults, source)
    return {int(v) for v in np.nonzero(dist != UNREACHABLE)[0]}


def bfs_distances(topo: Topology, faults: FaultSet, source: int) -> np.ndarray:
    """True shortest-path distance from ``source`` to every node.

    Returns an int64 vector with ``UNREACHABLE`` (-1) for faulty or
    disconnected nodes.  If ``source`` itself is faulty every entry is
    ``UNREACHABLE``.
    """
    topo.validate_node(source)
    n_nodes = topo.num_nodes
    dist = np.full(n_nodes, UNREACHABLE, dtype=np.int64)
    if faults.is_node_faulty(source):
        return dist

    table = getattr(topo, "neighbor_table", None)
    if table is not None and not faults.has_link_faults:
        return _bfs_vectorized(table(), faults.node_mask(n_nodes), source)

    dist[source] = 0
    queue = deque([source])
    while queue:
        u = queue.popleft()
        du = dist[u]
        for v in topo.neighbors(u):
            if (
                dist[v] == UNREACHABLE
                and not faults.is_node_faulty(v)
                and not faults.is_link_faulty(u, v)
            ):
                dist[v] = du + 1
                queue.append(v)
    return dist


def _bfs_vectorized(
    neighbor_table: np.ndarray, faulty_mask: np.ndarray, source: int
) -> np.ndarray:
    """Frontier-at-a-time BFS using the dense neighbor matrix.

    Each sweep gathers all neighbors of the current frontier in one fancy
    index — the per-level work is O(frontier * n) numpy ops with no Python
    inner loop, which keeps 10-cube Monte-Carlo sweeps fast.
    """
    n_nodes = neighbor_table.shape[0]
    dist = np.full(n_nodes, UNREACHABLE, dtype=np.int64)
    visited = faulty_mask.copy()
    dist[source] = 0
    visited[source] = True
    frontier = np.array([source], dtype=np.int64)
    level = 0
    while frontier.size:
        level += 1
        cand = neighbor_table[frontier].ravel()
        cand = cand[~visited[cand]]
        if cand.size == 0:
            break
        frontier = np.unique(cand)
        visited[frontier] = True
        dist[frontier] = level
    return dist


def shortest_path(
    topo: Topology, faults: FaultSet, source: int, dest: int
) -> Optional[List[int]]:
    """One true shortest fault-free path, or ``None`` if unreachable.

    Deterministic: parents are chosen smallest-id first.  This is the
    global-information baseline router's path and the tests' ground truth
    for "an optimal path exists".
    """
    topo.validate_node(source)
    topo.validate_node(dest)
    if faults.is_node_faulty(source) or faults.is_node_faulty(dest):
        return None
    if source == dest:
        return [source]

    parent: Dict[int, int] = {source: source}
    queue = deque([source])
    while queue:
        u = queue.popleft()
        for v in sorted(topo.neighbors(u)):
            if v in parent or faults.is_node_faulty(v):
                continue
            if faults.is_link_faulty(u, v):
                continue
            parent[v] = u
            if v == dest:
                return _unwind(parent, source, dest)
            queue.append(v)
    return None


def _unwind(parent: Dict[int, int], source: int, dest: int) -> List[int]:
    path = [dest]
    while path[-1] != source:
        path.append(parent[path[-1]])
    path.reverse()
    return path


def path_is_fault_free(
    topo: Topology, faults: FaultSet, path: Sequence[int]
) -> bool:
    """Check a path visits only nonfaulty nodes over nonfaulty links and
    takes valid hops.  Used by tests to audit every route a router emits."""
    if not path:
        return False
    for v in path:
        topo.validate_node(v)
        if faults.is_node_faulty(v):
            return False
    for u, v in zip(path, path[1:]):
        if v not in topo.neighbors(u):
            return False
        if faults.is_link_faulty(u, v):
            return False
    return True
