"""The generalized hypercube ``GH(m_{n-1} x ... x m_1 x m_0)``.

Bhuyan–Agrawal generalized hypercubes (paper ref [1], used in Section 4.2):
nodes are mixed-radix vectors ``(a_{n-1}, ..., a_0)`` with
``0 <= a_i < m_i``; two nodes are adjacent iff they differ in exactly one
coordinate.  Each *dimension* is therefore a complete graph on ``m_i``
nodes — every node reaches any coordinate value of a dimension in one hop,
which is why routing in GH "is exactly the same as in a regular hypercube".

Node ids are the mixed-radix value ``sum(a_i * stride_i)`` with dimension 0
least significant, matching the binary cube's bit layout.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from .topology import Topology

__all__ = ["GeneralizedHypercube"]


class GeneralizedHypercube(Topology):
    """A generalized n-dimensional hypercube.

    Parameters
    ----------
    radices:
        Per-dimension sizes ``(m_0, m_1, ..., m_{n-1})``, least-significant
        dimension first.  Every ``m_i`` must be at least 2.  The paper's
        ``2 x 3 x 2`` example (written most-significant first) is
        ``GeneralizedHypercube((2, 3, 2))``.

    Examples
    --------
    >>> gh = GeneralizedHypercube((2, 3, 2))
    >>> gh.num_nodes
    12
    >>> gh.format_node(gh.node_from_coords((0, 1, 0)))
    '010'
    """

    __slots__ = ("_radices", "_strides", "_num_nodes")

    def __init__(self, radices: Sequence[int]) -> None:
        rads = tuple(int(m) for m in radices)
        if not rads:
            raise ValueError("generalized hypercube needs at least one dimension")
        if any(m < 2 for m in rads):
            raise ValueError(f"every radix must be >= 2, got {rads}")
        strides = []
        acc = 1
        for m in rads:
            strides.append(acc)
            acc *= m
        if acc > (1 << 26):
            raise ValueError(f"topology too large: {acc} nodes")
        self._radices: Tuple[int, ...] = rads
        self._strides: Tuple[int, ...] = tuple(strides)
        self._num_nodes = acc

    # -- size ---------------------------------------------------------------

    @property
    def num_nodes(self) -> int:
        return self._num_nodes

    @property
    def dimension(self) -> int:
        return len(self._radices)

    @property
    def radices(self) -> Tuple[int, ...]:
        """Per-dimension sizes, dimension 0 first."""
        return self._radices

    # -- coordinates ----------------------------------------------------------

    def coords(self, node: int) -> Tuple[int, ...]:
        """Mixed-radix coordinates ``(a_0, ..., a_{n-1})`` of ``node``."""
        self.validate_node(node)
        out = []
        for m in self._radices:
            out.append(node % m)
            node //= m
        return tuple(out)

    def node_from_coords(self, coords: Sequence[int]) -> int:
        """Inverse of :meth:`coords`."""
        if len(coords) != len(self._radices):
            raise ValueError(
                f"expected {len(self._radices)} coordinates, got {len(coords)}"
            )
        node = 0
        for c, m, stride in zip(coords, self._radices, self._strides):
            if not 0 <= c < m:
                raise ValueError(f"coordinate {c} out of range for radix {m}")
            node += c * stride
        return node

    def coordinate(self, node: int, dim: int) -> int:
        """Coordinate of ``node`` in dimension ``dim``."""
        self.validate_node(node)
        self._validate_dim(dim)
        return (node // self._strides[dim]) % self._radices[dim]

    def with_coordinate(self, node: int, dim: int, value: int) -> int:
        """``node`` with its dimension-``dim`` coordinate replaced."""
        self.validate_node(node)
        self._validate_dim(dim)
        m = self._radices[dim]
        if not 0 <= value < m:
            raise ValueError(f"coordinate {value} out of range for radix {m}")
        stride = self._strides[dim]
        old = (node // stride) % m
        return node + (value - old) * stride

    # -- adjacency ----------------------------------------------------------

    def neighbors(self, node: int) -> List[int]:
        self.validate_node(node)
        out: List[int] = []
        for dim in range(len(self._radices)):
            out.extend(self.neighbors_along(node, dim))
        return out

    def neighbors_along(self, node: int, dim: int) -> List[int]:
        self.validate_node(node)
        self._validate_dim(dim)
        m = self._radices[dim]
        stride = self._strides[dim]
        own = (node // stride) % m
        return [
            node + (v - own) * stride for v in range(m) if v != own
        ]

    def degree(self, node: int) -> int:
        self.validate_node(node)
        return sum(m - 1 for m in self._radices)

    # -- metric -------------------------------------------------------------

    def distance(self, a: int, b: int) -> int:
        return len(self.differing_dimensions(a, b))

    def differing_dimensions(self, a: int, b: int) -> List[int]:
        self.validate_node(a)
        self.validate_node(b)
        dims = []
        for dim, m in enumerate(self._radices):
            if (a // self._strides[dim]) % m != (b // self._strides[dim]) % m:
                dims.append(dim)
        return dims

    def agreeing_dimensions(self, a: int, b: int) -> List[int]:
        """Dimensions where ``a`` and ``b`` share a coordinate (spares)."""
        differing = set(self.differing_dimensions(a, b))
        return [d for d in range(self.dimension) if d not in differing]

    def step_toward(self, node: int, dest: int, dim: int) -> int:
        return self.with_coordinate(node, dim, self.coordinate(dest, dim))

    # -- naming ---------------------------------------------------------------

    def format_node(self, node: int) -> str:
        """Render most-significant dimension first, the paper's style.

        Single digits are concatenated (``'010'``); radices above 10 fall
        back to a dotted tuple form.
        """
        cs = self.coords(node)
        if all(m <= 10 for m in self._radices):
            return "".join(str(c) for c in reversed(cs))
        return "(" + ",".join(str(c) for c in reversed(cs)) + ")"

    def parse_node(self, text: str) -> int:
        """Parse the concatenated-digit form produced by ``format_node``."""
        stripped = text.strip()
        if len(stripped) != len(self._radices):
            raise ValueError(
                f"expected {len(self._radices)} digits, got {text!r}"
            )
        cs = [int(c) for c in reversed(stripped)]
        return self.node_from_coords(cs)

    # -- dunder ---------------------------------------------------------------

    def _validate_dim(self, dim: int) -> None:
        if not 0 <= dim < len(self._radices):
            raise ValueError(
                f"dimension {dim} out of range for GH{len(self._radices)}"
            )

    def __repr__(self) -> str:
        shape = " x ".join(str(m) for m in reversed(self._radices))
        return f"GeneralizedHypercube({shape})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, GeneralizedHypercube)
            and other._radices == self._radices
        )

    def __hash__(self) -> int:
        return hash(("GeneralizedHypercube", self._radices))
