"""Optional native-compilation support (numba), gated at import time.

The packed-bitset kernel tier (see :mod:`repro.safety.packed` and the
``"packed"`` routing kernel in :mod:`repro.routing.batch`) has two
implementations of identical semantics:

* a **numba** ``@njit`` variant — loop-fused native code, used when the
  optional ``numba`` package imports cleanly;
* a **pure-numpy SWAR** variant — word-parallel array expressions, always
  available.

This module owns the gate.  ``HAVE_NUMBA`` is the single source of truth
consulted by every dispatch site, and tests monkeypatch it (or set the
``REPRO_DISABLE_NUMBA`` environment variable before import) to pin the
fallback path.  When numba is absent, :func:`njit` degrades to a
decorator that returns the function unchanged, so a module may decorate
its kernels unconditionally — they just run as plain Python, which the
dispatch sites never select.

No module outside this one may ``import numba`` directly: the repository
must keep working, bit-identically, on a bare numpy install (asserted by
the no-numba CI leg and the fallback-equivalence tests).
"""

from __future__ import annotations

import os
from typing import Any, Callable

__all__ = ["HAVE_NUMBA", "NUMBA_DISABLED_ENV_VAR", "njit", "numba_available"]

#: Set (to any non-empty value) to force the pure-numpy fallback even when
#: numba is importable — the switch the no-numba CI leg flips without
#: uninstalling anything.
NUMBA_DISABLED_ENV_VAR = "REPRO_DISABLE_NUMBA"


def _numba_disabled() -> bool:
    return bool(os.environ.get(NUMBA_DISABLED_ENV_VAR, "").strip())


HAVE_NUMBA = False
if not _numba_disabled():
    try:
        from numba import njit as _numba_njit  # type: ignore

        HAVE_NUMBA = True
    except ImportError:  # pragma: no cover - exercised on numba installs
        _numba_njit = None
else:  # pragma: no cover - exercised by the no-numba CI leg
    _numba_njit = None


def njit(*args: Any, **kwargs: Any) -> Callable:
    """``numba.njit`` when available, identity decorator otherwise.

    Supports both ``@njit`` and ``@njit(cache=True, ...)`` forms.  The
    undecorated fallback is never *dispatched to* (callers check
    :data:`HAVE_NUMBA` first); it exists so kernels compile lazily and
    module import never depends on numba.
    """
    if HAVE_NUMBA:
        return _numba_njit(*args, **kwargs)
    if len(args) == 1 and callable(args[0]) and not kwargs:
        return args[0]

    def deco(fn: Callable) -> Callable:
        return fn

    return deco


def numba_available() -> bool:
    """Live check used by dispatch sites (monkeypatchable via module attr).

    Reads :data:`HAVE_NUMBA` at call time so tests can flip the module
    attribute to pin the pure-numpy path without reloading modules.
    """
    return HAVE_NUMBA and not _numba_disabled()
