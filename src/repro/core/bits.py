"""Bit-level address arithmetic for binary hypercubes.

Every node of an ``n``-cube is identified by an integer in ``[0, 2**n)``
whose binary expansion is the node address ``a_{n-1} ... a_1 a_0`` used in
the paper.  This module provides the scalar primitives (Hamming distance,
neighbor addresses, preferred/spare dimension extraction) and their
numpy-vectorized counterparts used by the experiment kernels.

The vectorized functions operate on ``numpy.uint32``/``int64`` arrays and
never allocate inside loops; callers that run sweeps should reuse the
returned buffers where possible (see ``neighbor_table``).
"""

from __future__ import annotations

from typing import Iterator, List, Sequence

import numpy as np

__all__ = [
    "popcount",
    "hamming",
    "flip_bit",
    "get_bit",
    "unit_vector",
    "neighbors_of",
    "preferred_dimensions",
    "spare_dimensions",
    "format_address",
    "parse_address",
    "popcount_array",
    "hamming_array",
    "neighbor_table",
    "all_addresses",
]

# Maximum cube dimension supported by the vectorized kernels.  2**26 nodes
# is already ~0.5 GiB of int64 state per array; everything in the paper is
# n <= 10, so this is a generous guard rather than a real limit.
MAX_DIMENSION = 26


def popcount(x: int) -> int:
    """Number of one bits in ``x`` (the *weight* of an address)."""
    return int(x).bit_count()


def hamming(a: int, b: int) -> int:
    """Hamming distance ``H(a, b)`` between two node addresses.

    This equals the length of every optimal (Hamming-distance) path between
    the two nodes in a fault-free hypercube.
    """
    return (a ^ b).bit_count()


def flip_bit(a: int, dim: int) -> int:
    """Address of the neighbor of ``a`` along dimension ``dim``.

    The paper writes this as ``a ^ e^dim`` where ``e^dim`` is the unit
    vector with bit ``dim`` set.
    """
    return a ^ (1 << dim)


def get_bit(a: int, dim: int) -> int:
    """Bit ``dim`` of address ``a`` (0 or 1)."""
    return (a >> dim) & 1


def unit_vector(dim: int) -> int:
    """The unit address ``e^dim``: bit ``dim`` set, all others zero."""
    return 1 << dim


def neighbors_of(a: int, n: int) -> List[int]:
    """All ``n`` neighbors of node ``a`` in an ``n``-cube, dimension order.

    Index ``i`` of the result is the neighbor along dimension ``i``
    (``a ^ e^i`` in paper notation).
    """
    return [a ^ (1 << i) for i in range(n)]


def preferred_dimensions(s: int, d: int, n: int) -> List[int]:
    """Dimensions in which ``s`` and ``d`` differ, ascending.

    These are the *preferred dimensions* of a unicast from ``s`` to ``d``;
    crossing any of them strictly decreases the Hamming distance to ``d``.
    There are exactly ``H(s, d)`` of them.
    """
    diff = s ^ d
    return [i for i in range(n) if (diff >> i) & 1]


def spare_dimensions(s: int, d: int, n: int) -> List[int]:
    """Dimensions in which ``s`` and ``d`` agree, ascending.

    Crossing a *spare dimension* increases the distance to ``d`` by one;
    the suboptimal branch (condition C3) of the unicasting algorithm uses
    exactly one spare hop, giving a path of length ``H(s, d) + 2``.
    """
    diff = s ^ d
    return [i for i in range(n) if not (diff >> i) & 1]


def format_address(a: int, n: int) -> str:
    """Render ``a`` as the paper's ``n``-bit binary string, MSB first."""
    if not 0 <= a < (1 << n):
        raise ValueError(f"address {a} out of range for a {n}-cube")
    return format(a, f"0{n}b")


def parse_address(text: str) -> int:
    """Parse a binary address string such as ``'0110'`` into an int."""
    stripped = text.strip()
    if not stripped or any(c not in "01" for c in stripped):
        raise ValueError(f"not a binary address: {text!r}")
    return int(stripped, 2)


# ---------------------------------------------------------------------------
# Vectorized kernels
# ---------------------------------------------------------------------------

# Byte-wise popcount lookup table; uint8 keeps it cache-resident.
_POPCOUNT8 = np.array([bin(i).count("1") for i in range(256)], dtype=np.uint8)


def popcount_array(x: np.ndarray) -> np.ndarray:
    """Vectorized popcount for an integer array (any shape).

    Works byte-by-byte through a 256-entry lookup table, which is both
    allocation-light and branch-free; for the address widths used here
    (n <= 26) this is four table gathers.
    """
    x = np.asarray(x)
    if x.size == 0:
        return np.zeros(x.shape, dtype=np.int64)
    if np.any(x < 0):
        raise ValueError("popcount_array requires nonnegative values")
    work = x.astype(np.uint64, copy=True)
    out = np.zeros(x.shape, dtype=np.int64)
    while True:
        out += _POPCOUNT8[(work & np.uint64(0xFF)).astype(np.intp)]
        work >>= np.uint64(8)
        if not work.any():
            break
    return out


def hamming_array(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Vectorized Hamming distance between address arrays (broadcasting)."""
    return popcount_array(np.bitwise_xor(np.asarray(a), np.asarray(b)))


def all_addresses(n: int) -> np.ndarray:
    """All ``2**n`` node addresses of an ``n``-cube as an int64 array."""
    if not 0 <= n <= MAX_DIMENSION:
        raise ValueError(f"dimension must be in [0, {MAX_DIMENSION}], got {n}")
    return np.arange(1 << n, dtype=np.int64)


def neighbor_table(n: int) -> np.ndarray:
    """The ``(2**n, n)`` neighbor-index matrix of an ``n``-cube.

    ``table[a, i]`` is the address of ``a``'s neighbor along dimension
    ``i``.  Gathering per-neighbor state as ``state[table]`` is the
    building block of the vectorized safety-level fixed point — one fancy
    index replaces the per-node message exchange of the distributed GS
    algorithm.
    """
    addrs = all_addresses(n)
    if n == 0:
        return np.zeros((1, 0), dtype=np.int64)
    dims = np.int64(1) << np.arange(n, dtype=np.int64)
    return np.bitwise_xor(addrs[:, None], dims[None, :])


def iter_subcube(fixed_bits: Sequence[tuple[int, int]], n: int) -> Iterator[int]:
    """Iterate addresses of the subcube where ``fixed_bits`` are pinned.

    ``fixed_bits`` is a sequence of ``(dim, value)`` pairs; all remaining
    dimensions range freely.  Used by fault-model generators that carve out
    subcube-shaped fault clusters.
    """
    pins = dict(fixed_bits)
    for dim, val in pins.items():
        if not 0 <= dim < n:
            raise ValueError(f"dimension {dim} out of range for {n}-cube")
        if val not in (0, 1):
            raise ValueError(f"pinned value must be 0/1, got {val}")
    free = [i for i in range(n) if i not in pins]
    base = sum(1 << d for d, v in pins.items() if v)
    for mask in range(1 << len(free)):
        addr = base
        for j, dim in enumerate(free):
            if (mask >> j) & 1:
                addr |= 1 << dim
        yield addr
