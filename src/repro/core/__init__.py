"""Core substrate: addresses, topologies, faults, oracle connectivity.

Everything above this layer (safety levels, routing, the simulator) treats
these as the ground the system stands on.  Nothing here knows about safety
levels or routing.
"""

from . import bits
from .dispatch import resolve_kernel_name
from .native import HAVE_NUMBA, numba_available
from .disjoint_paths import (
    count_optimal_paths,
    disjoint_optimal_paths,
    verify_node_disjoint,
)
from .faults import FaultSet, normalize_link
from .fault_models import (
    FaultEvent,
    FaultSchedule,
    clustered_node_faults,
    isolating_faults,
    mixed_faults,
    random_fault_schedule,
    subcube_faults,
    uniform_link_faults,
    uniform_node_faults,
)
from .generalized import GeneralizedHypercube
from .hypercube import Hypercube, neighbor_table
from .partition import (
    UNREACHABLE,
    bfs_distances,
    component_of,
    components,
    is_connected,
    path_is_fault_free,
    reachable_set,
    same_component,
    shortest_path,
)
from .topology import Topology

__all__ = [
    "bits",
    "resolve_kernel_name",
    "HAVE_NUMBA",
    "numba_available",
    "count_optimal_paths",
    "disjoint_optimal_paths",
    "verify_node_disjoint",
    "FaultSet",
    "normalize_link",
    "FaultEvent",
    "FaultSchedule",
    "clustered_node_faults",
    "isolating_faults",
    "mixed_faults",
    "random_fault_schedule",
    "subcube_faults",
    "uniform_link_faults",
    "uniform_node_faults",
    "GeneralizedHypercube",
    "Hypercube",
    "neighbor_table",
    "Topology",
    "UNREACHABLE",
    "bfs_distances",
    "component_of",
    "components",
    "is_connected",
    "path_is_fault_free",
    "reachable_set",
    "same_component",
    "shortest_path",
]
