"""repro.obs — metrics and structured telemetry for experiment runs.

The observability layer has three parts, all dependency-free below the
rest of the package so every subsystem may report through it:

* :mod:`repro.obs.metrics` — an in-process :class:`MetricsRegistry`
  (counters, gauges, histograms, timers) that costs one branch per hook
  when disabled;
* :mod:`repro.obs.events` / :mod:`repro.obs.recorder` — the
  schema-versioned JSONL event stream: a :class:`RunRecorder` frames each
  run with a provenance manifest (run id, fresh entropy, config, git
  revision) and a ``run_end`` envelope, validating every record at emit
  time;
* :mod:`repro.obs.runstats` — offline aggregation: ``repro stats
  run.jsonl`` folds a stream back into the run's headline numbers.

Hot paths report through the hooks in :mod:`repro.obs.instruments`
(:func:`record_route_attempt`, :func:`record_gs_batch`,
:func:`record_sweep`); turn collection on around any code block with::

    from repro import obs

    with obs.observed("run.jsonl", config={"experiment": "fig2"}) as (reg, rec):
        ...  # routed unicasts, kernel batches and sweeps are recorded
    print(obs.render_stats(obs.summarize_run("run.jsonl")))

The CLI exposes the same switch as ``--metrics-out PATH``.
"""

from .events import EVENT_TYPES, SCHEMA_VERSION, SchemaError, validate_event, validate_stream
from .instruments import (
    STANDARD_COUNTERS,
    active_recorder,
    disable_metrics,
    enable_metrics,
    metrics,
    observed,
    record_chaos_run,
    record_gs_batch,
    record_route_attempt,
    record_sim_drop,
    record_sweep,
    set_recorder,
)
from .metrics import Counter, Gauge, Histogram, MetricsRegistry, Timer
from .recorder import (
    RunRecorder,
    current_git_rev,
    iter_events,
    read_events,
    validate_run,
)
from .runstats import RunStats, render_stats, summarize_run

__all__ = [
    "SCHEMA_VERSION",
    "EVENT_TYPES",
    "SchemaError",
    "validate_event",
    "validate_stream",
    "Counter",
    "Gauge",
    "Histogram",
    "Timer",
    "MetricsRegistry",
    "RunRecorder",
    "current_git_rev",
    "iter_events",
    "read_events",
    "validate_run",
    "RunStats",
    "summarize_run",
    "render_stats",
    "STANDARD_COUNTERS",
    "metrics",
    "enable_metrics",
    "disable_metrics",
    "active_recorder",
    "set_recorder",
    "observed",
    "record_route_attempt",
    "record_gs_batch",
    "record_sweep",
    "record_sim_drop",
    "record_chaos_run",
]
