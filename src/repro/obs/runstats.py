"""Offline aggregation of a recorded run: the ``repro stats`` backend.

Reads a ``--metrics-out`` JSONL file, validates it against the schema,
and folds the event stream back into the quantities the live experiment
reported — C1/C2/C3 hit rates, GS stabilization-round averages and
maxima, sweep-engine throughput — *from the events alone*.  That
round-trip (emit → aggregate → same numbers) is the contract the
telemetry layer is tested against: if ``repro stats`` cannot reproduce a
headline number, the stream is missing information.

Deliberately free of :mod:`repro.analysis` imports so the observability
layer stays at the bottom of the dependency stack (core/simcore-level);
rendering is plain text.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from .events import SchemaError, validate_stream
from .recorder import iter_events

__all__ = ["RunStats", "summarize_run", "render_stats"]


@dataclass
class RunStats:
    """Aggregates recovered from one run's event stream."""

    path: str
    manifest: Dict[str, Any]
    run_end: Dict[str, Any]
    total_events: int = 0
    event_counts: Dict[str, int] = field(default_factory=dict)
    #: RouteStatus value -> attempts; SourceCondition value -> attempts.
    route_status: Dict[str, int] = field(default_factory=dict)
    route_conditions: Dict[str, int] = field(default_factory=dict)
    route_hops_sum: int = 0
    #: routing_batch kernel calls and the routes they covered (the
    #: per-route outcomes are already folded into route_status /
    #: route_conditions / route_hops_sum alongside scalar attempts).
    routing_batches: int = 0
    routing_batch_routes: int = 0
    routing_kernels: Dict[str, int] = field(default_factory=dict)
    #: stabilization round -> trial count, merged over every gs_batch.
    gs_rounds_hist: Dict[int, int] = field(default_factory=dict)
    gs_kernels: Dict[str, int] = field(default_factory=dict)
    gs_batches: int = 0
    #: incremental_update aggregates: fault deltas the level engine
    #: absorbed without a full recompute.
    incr_updates: int = 0
    incr_fallbacks: int = 0
    incr_dirty_seed_sum: int = 0
    incr_dirty_total_sum: int = 0
    incr_changed_sum: int = 0
    incr_rounds_sum: int = 0
    incr_messages_sum: int = 0
    #: service_batch / epoch_swap aggregates: the routing service's
    #: micro-batched request flow and its fault-epoch transitions.
    service_batches: int = 0
    service_routes: int = 0
    service_rejected: int = 0
    #: batcher *entries* folded into those batches — a block submission
    #: is one entry covering many rows, so entries < requests measures
    #: how much the wire's BLOCK op amortized (omitted in the event when
    #: every entry was a single, i.e. entries == requests).
    service_entries: int = 0
    service_backends: Dict[str, int] = field(default_factory=dict)
    service_queue_us_sum: int = 0
    service_exec_us_sum: int = 0
    epoch_swaps: int = 0
    epoch_swap_fallbacks: int = 0
    epoch_spare_hits: int = 0
    epoch_faults_added: int = 0
    epoch_faults_removed: int = 0
    epoch_publish_us_sum: int = 0
    epoch_flip_us_sum: int = 0
    epoch_last: int = 0
    #: shard_failover aggregates: self-healing events at the shard tier.
    shard_failovers: int = 0
    failover_tenants_moved: int = 0
    failover_epochs_replayed: int = 0
    failover_ms_sum: float = 0.0
    failover_ms_max: float = 0.0
    failover_detected: Dict[str, int] = field(default_factory=dict)
    sweep_trials: int = 0
    sweep_chunks: int = 0
    sweep_elapsed_s: float = 0.0
    sweep_jobs_max: int = 0
    #: chaos_run aggregates: resilient deliveries under fault injection.
    chaos_runs: int = 0
    chaos_delivered: int = 0
    chaos_stages: Dict[str, int] = field(default_factory=dict)
    chaos_retries: int = 0
    chaos_node_kills: int = 0
    chaos_link_kills: int = 0
    chaos_tampered: int = 0
    chaos_duplicates: int = 0
    chaos_stale_reroutes: int = 0
    chaos_hops_sum: int = 0
    chaos_latency_sum: int = 0
    chaos_latency_count: int = 0
    experiments: List[Dict[str, Any]] = field(default_factory=list)
    metrics_snapshot: Optional[Dict[str, Any]] = None

    # -- derived headline numbers ------------------------------------------

    @property
    def route_attempts(self) -> int:
        return sum(self.route_status.values())

    @property
    def gs_trials(self) -> int:
        return sum(self.gs_rounds_hist.values())

    @property
    def gs_rounds_mean(self) -> float:
        trials = self.gs_trials
        if not trials:
            return 0.0
        return sum(r * c for r, c in self.gs_rounds_hist.items()) / trials

    @property
    def gs_rounds_max(self) -> int:
        return max(self.gs_rounds_hist, default=0)

    @property
    def sweep_trials_per_s(self) -> float:
        if self.sweep_elapsed_s <= 0:
            return 0.0
        return self.sweep_trials / self.sweep_elapsed_s

    @property
    def incr_dirty_seed_mean(self) -> float:
        if not self.incr_updates:
            return 0.0
        return self.incr_dirty_seed_sum / self.incr_updates

    def condition_rate(self, condition: str) -> float:
        attempts = self.route_attempts
        if not attempts:
            return 0.0
        return self.route_conditions.get(condition, 0) / attempts

    @property
    def service_requests(self) -> int:
        return self.service_routes + self.service_rejected

    @property
    def service_queue_us_mean(self) -> float:
        if not self.service_batches:
            return 0.0
        return self.service_queue_us_sum / self.service_batches

    @property
    def service_batch_size_mean(self) -> float:
        if not self.service_batches:
            return 0.0
        return self.service_requests / self.service_batches

    @property
    def chaos_delivery_rate(self) -> float:
        if not self.chaos_runs:
            return 0.0
        return self.chaos_delivered / self.chaos_runs

    @property
    def chaos_latency_mean(self) -> float:
        if not self.chaos_latency_count:
            return 0.0
        return self.chaos_latency_sum / self.chaos_latency_count


def summarize_run(path: Union[str, Path]) -> RunStats:
    """Validate ``path`` and fold its events into a :class:`RunStats`."""
    try:
        records = list(iter_events(path))
    except json.JSONDecodeError as exc:
        raise SchemaError(f"not valid JSON Lines: {exc}") from exc
    validate_stream(records)
    stats = RunStats(path=str(path), manifest=records[0],
                     run_end=records[-1], total_events=len(records))
    for rec in records:
        etype = rec["type"]
        stats.event_counts[etype] = stats.event_counts.get(etype, 0) + 1
        if etype == "route_attempt":
            status, cond = rec["status"], rec["condition"]
            stats.route_status[status] = stats.route_status.get(status, 0) + 1
            stats.route_conditions[cond] = (
                stats.route_conditions.get(cond, 0) + 1)
            stats.route_hops_sum += rec["hops"]
        elif etype == "routing_batch":
            stats.routing_batches += 1
            stats.routing_batch_routes += rec["routes"]
            stats.routing_kernels[rec["kernel"]] = (
                stats.routing_kernels.get(rec["kernel"], 0) + 1)
            for status, count in rec["statuses"].items():
                stats.route_status[status] = (
                    stats.route_status.get(status, 0) + count)
            for cond, count in rec["conditions"].items():
                stats.route_conditions[cond] = (
                    stats.route_conditions.get(cond, 0) + count)
            stats.route_hops_sum += rec["hops_sum"]
        elif etype == "gs_batch":
            stats.gs_batches += 1
            stats.gs_kernels[rec["kernel"]] = (
                stats.gs_kernels.get(rec["kernel"], 0) + 1)
            for r, c in rec["rounds_hist"].items():
                r = int(r)  # JSON object keys arrive as strings
                stats.gs_rounds_hist[r] = stats.gs_rounds_hist.get(r, 0) + c
        elif etype == "incremental_update":
            stats.incr_updates += 1
            if rec["fallback"]:
                stats.incr_fallbacks += 1
            stats.incr_dirty_seed_sum += rec["dirty_seed"]
            stats.incr_dirty_total_sum += rec["dirty_total"]
            stats.incr_changed_sum += rec["changed"]
            stats.incr_rounds_sum += rec["rounds"]
            stats.incr_messages_sum += rec["messages"]
        elif etype == "service_batch":
            stats.service_batches += 1
            stats.service_routes += rec["routes"]
            stats.service_rejected += rec["rejected"]
            stats.service_entries += rec.get(
                "entries", rec["routes"] + rec["rejected"])
            stats.service_backends[rec["backend"]] = (
                stats.service_backends.get(rec["backend"], 0) + 1)
            stats.service_queue_us_sum += rec["queue_us"]
            stats.service_exec_us_sum += rec["exec_us"]
        elif etype == "epoch_swap":
            stats.epoch_swaps += 1
            if rec["fallback"]:
                stats.epoch_swap_fallbacks += 1
            if rec.get("spare", True):
                stats.epoch_spare_hits += 1
            stats.epoch_faults_added += rec["added"]
            stats.epoch_faults_removed += rec["removed"]
            stats.epoch_publish_us_sum += rec["publish_us"]
            stats.epoch_flip_us_sum += rec.get("flip_us", 0)
            stats.epoch_last = max(stats.epoch_last, rec["epoch"])
        elif etype == "shard_failover":
            stats.shard_failovers += 1
            stats.failover_tenants_moved += rec["moved"]
            stats.failover_epochs_replayed += rec["epochs_replayed"]
            stats.failover_ms_sum += rec["failover_ms"]
            stats.failover_ms_max = max(stats.failover_ms_max,
                                        rec["failover_ms"])
            stats.failover_detected[rec["detected"]] = (
                stats.failover_detected.get(rec["detected"], 0) + 1)
        elif etype == "chaos_run":
            stats.chaos_runs += 1
            if rec["status"] == "delivered":
                stats.chaos_delivered += 1
            stats.chaos_stages[rec["stage"]] = (
                stats.chaos_stages.get(rec["stage"], 0) + 1)
            stats.chaos_retries += rec["retries"]
            stats.chaos_node_kills += rec["node_kills"]
            stats.chaos_link_kills += rec["link_kills"]
            stats.chaos_tampered += rec["tampered"]
            stats.chaos_duplicates += rec["duplicates"]
            stats.chaos_stale_reroutes += rec["stale_reroutes"]
            stats.chaos_hops_sum += rec["hops"]
            if "latency" in rec:
                stats.chaos_latency_sum += rec["latency"]
                stats.chaos_latency_count += 1
        elif etype == "sweep":
            stats.sweep_trials += rec["trials"]
            stats.sweep_chunks += rec["chunks"]
            stats.sweep_elapsed_s += rec["elapsed_s"]
            stats.sweep_jobs_max = max(stats.sweep_jobs_max, rec["jobs"])
        elif etype == "experiment":
            stats.experiments.append(rec)
        elif etype == "metrics_snapshot":
            stats.metrics_snapshot = rec["metrics"]
    return stats


def _fmt_counts(pairs: Dict[str, int], total: int) -> str:
    parts = []
    for key in sorted(pairs):
        share = 100.0 * pairs[key] / total if total else 0.0
        parts.append(f"{key}={pairs[key]} ({share:.1f}%)")
    return "  ".join(parts) if parts else "none"


def render_stats(stats: RunStats) -> str:
    """Human-readable report mirroring the live experiment's headlines."""
    m = stats.manifest
    lines = [
        f"run {m['run_id'][:12]}  [{stats.path}]",
        f"  schema v{m['v']}  tool={m['tool']}  started={m['started_at']}",
        f"  git={m.get('git_rev', 'n/a')}  python={m.get('python', 'n/a')}"
        f"  status={stats.run_end['status']}"
        f"  wall={stats.run_end['wall_s']:.3f}s",
        f"  events: {stats.total_events} total — "
        + "  ".join(f"{k}={v}" for k, v in sorted(stats.event_counts.items())),
    ]
    config = m.get("config") or {}
    if config:
        lines.append("  config: "
                     + "  ".join(f"{k}={v}" for k, v in sorted(config.items())))
    if stats.experiments:
        lines.append("experiments:")
        for exp in stats.experiments:
            lines.append(f"  {exp['name']:<16} {exp['status']:<6} "
                         f"{exp['elapsed_s']:.2f}s")
    attempts = stats.route_attempts
    lines.append(f"routing: {attempts} attempts")
    if stats.routing_batches:
        lines.append(
            f"  batched:    {stats.routing_batch_routes} routes in "
            f"{stats.routing_batches} kernel calls "
            f"({_fmt_counts(stats.routing_kernels, stats.routing_batches)})"
        )
    if attempts:
        lines.append("  status:     "
                     + _fmt_counts(stats.route_status, attempts))
        lines.append("  conditions: "
                     + _fmt_counts(stats.route_conditions, attempts))
        lines.append(f"  mean hops:  {stats.route_hops_sum / attempts:.3f}")
    lines.append(
        f"gs kernel: {stats.gs_trials} trials in {stats.gs_batches} batches"
        + (f" ({_fmt_counts(stats.gs_kernels, stats.gs_batches)})"
           if stats.gs_batches else "")
    )
    if stats.gs_trials:
        lines.append(f"  rounds: mean={stats.gs_rounds_mean:.4f}  "
                     f"max={stats.gs_rounds_max}  "
                     f"hist={dict(sorted(stats.gs_rounds_hist.items()))}")
    if stats.incr_updates:
        lines.append(
            f"incremental levels: {stats.incr_updates} updates "
            f"({stats.incr_fallbacks} fallbacks)"
        )
        lines.append(
            f"  dirty:      seed_mean={stats.incr_dirty_seed_mean:.2f}  "
            f"evaluated={stats.incr_dirty_total_sum}  "
            f"changed={stats.incr_changed_sum}"
        )
        lines.append(
            f"  protocol:   rounds={stats.incr_rounds_sum}  "
            f"messages={stats.incr_messages_sum}"
        )
    if stats.service_batches or stats.epoch_swaps:
        lines.append(
            f"service: {stats.service_requests} requests in "
            f"{stats.service_batches} micro-batches "
            f"(mean size {stats.service_batch_size_mean:.1f}; "
            f"{_fmt_counts(stats.service_backends, stats.service_batches)})"
        )
        lines.append(
            f"  outcomes:   routed={stats.service_routes}  "
            f"rejected={stats.service_rejected}"
        )
        if stats.service_entries and \
                stats.service_entries != stats.service_requests:
            lines.append(
                f"  blocks:     {stats.service_requests} rows in "
                f"{stats.service_entries} entries "
                f"(x{stats.service_requests / stats.service_entries:.1f} "
                f"wire amortization)"
            )
        lines.append(
            f"  latency:    queue_us_mean={stats.service_queue_us_mean:.0f}  "
            f"exec_us_sum={stats.service_exec_us_sum}"
        )
        lines.append(
            f"  epochs:     swaps={stats.epoch_swaps} "
            f"(fallbacks={stats.epoch_swap_fallbacks}, "
            f"warm_spares={stats.epoch_spare_hits})  "
            f"last_epoch={stats.epoch_last}  "
            f"faults +{stats.epoch_faults_added}/-{stats.epoch_faults_removed}  "
            f"publish_us_sum={stats.epoch_publish_us_sum}  "
            f"flip_us_sum={stats.epoch_flip_us_sum}"
        )
    if stats.shard_failovers:
        mean_ms = stats.failover_ms_sum / stats.shard_failovers
        lines.append(
            f"failover: {stats.shard_failovers} shard deaths "
            f"({_fmt_counts(stats.failover_detected, stats.shard_failovers)})"
        )
        lines.append(
            f"  recovered:  tenants_moved={stats.failover_tenants_moved}  "
            f"epochs_replayed={stats.failover_epochs_replayed}"
        )
        lines.append(
            f"  recovery:   failover_ms_mean={mean_ms:.1f}  "
            f"failover_ms_max={stats.failover_ms_max:.1f}"
        )
    if stats.chaos_runs:
        lines.append(
            f"chaos: {stats.chaos_runs} runs  "
            f"delivered={stats.chaos_delivered} "
            f"({100.0 * stats.chaos_delivery_rate:.1f}%)"
        )
        lines.append("  stages:     "
                     + _fmt_counts(stats.chaos_stages, stats.chaos_runs))
        lines.append(
            f"  injected:   node_kills={stats.chaos_node_kills}  "
            f"link_kills={stats.chaos_link_kills}  "
            f"tampered={stats.chaos_tampered}"
        )
        lines.append(
            f"  recovery:   retries={stats.chaos_retries}  "
            f"duplicates={stats.chaos_duplicates}  "
            f"stale_reroutes={stats.chaos_stale_reroutes}  "
            f"hops_sum={stats.chaos_hops_sum}"
        )
        if stats.chaos_latency_count:
            lines.append(
                f"  latency:    mean={stats.chaos_latency_mean:.3f} ticks "
                f"over {stats.chaos_latency_count} deliveries"
            )
    if stats.sweep_trials:
        lines.append(
            f"sweeps: {stats.sweep_trials} trials / {stats.sweep_chunks} "
            f"chunks in {stats.sweep_elapsed_s:.3f}s busy "
            f"-> {stats.sweep_trials_per_s:,.0f} trials/s "
            f"(jobs<={stats.sweep_jobs_max})"
        )
    if stats.metrics_snapshot:
        counters = stats.metrics_snapshot.get("counters", {})
        nonzero = {k: v for k, v in counters.items() if v}
        lines.append(f"counters ({len(counters)} registered, "
                     f"{len(nonzero)} nonzero):")
        for key in sorted(counters):
            lines.append(f"  {key:<28} {counters[key]}")
    return "\n".join(lines)
