"""Process-global observability state and the hot-path hooks.

This module owns exactly two globals — the ambient
:class:`~repro.obs.metrics.MetricsRegistry` (disabled by default) and the
ambient :class:`~repro.obs.recorder.RunRecorder` (``None`` by default) —
plus one ``record_*`` hook per instrumented subsystem:

* :func:`record_route_attempt` — the Section 3.2 unicast router;
* :func:`record_routing_batch` — the batched routing kernel;
* :func:`record_gs_batch` — the batched safety-level kernel;
* :func:`record_incremental_update` — one fault delta applied by the
  incremental level engine (``safety.incremental_*`` counters, dirty-set
  and wave histograms, ``incremental_update`` events);
* :func:`record_service_batch` — one micro-batch flushed by the routing
  service (``service.*`` counters, batch-size and latency histograms,
  ``service_batch`` events);
* :func:`record_epoch_swap` — one fault-epoch swap published by the
  service's epoch manager (``epoch_swap`` events);
* :func:`record_sweep` — the Monte-Carlo sweep engine;
* :func:`record_sim_drop` — per-cause message-loss accounting from the
  simulator network (``sim.dropped.<reason>`` counters);
* :func:`record_chaos_run` — one resilient delivery under chaos
  (``chaos_run`` events + ``chaos.*`` counters).

Hooks follow one discipline: **bail out on the first line when nothing is
observing**.  With the default state each hook costs a couple of global
reads and a branch, which is what keeps instrumented hot paths within
noise of the uninstrumented seed (asserted by the overhead-guard test and
the BENCH_sweep.json trajectory).

Sweep worker processes re-import this module fresh (spawn context), so
they always run with the defaults — observability never adds IPC to the
sweep engine, and parallel runs report through driver-side ``sweep``
events instead of interleaved worker streams.
"""

from __future__ import annotations

from contextlib import contextmanager
from pathlib import Path
from typing import Any, Dict, Iterator, Optional, Sequence, Tuple, Union

from .metrics import MetricsRegistry
from .recorder import RunRecorder

__all__ = [
    "metrics",
    "enable_metrics",
    "disable_metrics",
    "active_recorder",
    "set_recorder",
    "observed",
    "STANDARD_COUNTERS",
    "record_route_attempt",
    "record_routing_batch",
    "record_gs_batch",
    "record_incremental_update",
    "record_service_batch",
    "record_block_submission",
    "record_wire_frame",
    "record_shard_request",
    "record_shard_down",
    "record_shard_failover",
    "record_shed_request",
    "record_epoch_swap",
    "record_sweep",
    "record_sim_drop",
    "record_chaos_run",
    "record_campaign_cell",
    "record_campaign_fit",
]

#: Counters guaranteed present (value 0 if never fired) in every snapshot
#: taken through :func:`observed` — consumers key on these names.
STANDARD_COUNTERS: Tuple[str, ...] = (
    "route.attempts",
    "route.delivered",
    "route.aborted_at_source",
    "route.stuck",
    "route.hop_limit",
    "route.condition.C1",
    "route.condition.C2",
    "route.condition.C3",
    "route.condition.none",
    "routing.batch_calls",
    "routing.batch_routes",
    "gs.batch_calls",
    "gs.trials",
    "gs.kernel.swar",
    "gs.kernel.sorted",
    "gs.kernel.packed",
    "safety.incremental_updates",
    "safety.incremental_fallbacks",
    "safety.incremental_messages",
    "service.requests",
    "service.batches",
    "service.batch_routes",
    "service.rejected",
    "service.epoch_swaps",
    "service.torn_reads",
    "service.blocks",
    "service.spare_hits",
    "service.spare_misses",
    "service.wire_frames",
    "service.wire_errors",
    "shard.requests",
    "shard.errors",
    "service.shard_down",
    "service.failover_count",
    "service.shed_requests",
    "sweep.runs",
    "sweep.trials",
    "sweep.chunks",
    "sim.dropped.faulty_node",
    "sim.dropped.faulty_link",
    "sim.dropped.link_down",
    "sim.dropped.chaos_drop",
    "chaos.runs",
    "chaos.delivered",
    "chaos.failed_detected",
    "chaos.retries",
    "chaos.node_kills",
    "chaos.link_kills",
    "chaos.tampered",
    "chaos.duplicates",
    "campaign.cells",
    "campaign.trials",
    "campaign.delivered",
    "campaign.fits",
)

_METRICS = MetricsRegistry(enabled=False)
_RECORDER: Optional[RunRecorder] = None


def metrics() -> MetricsRegistry:
    """The ambient registry every hook reports to."""
    return _METRICS


def enable_metrics() -> MetricsRegistry:
    """Switch collection on (idempotent) and preregister standard counters."""
    _METRICS.enable()
    _METRICS.preregister(counters=STANDARD_COUNTERS)
    return _METRICS


def disable_metrics() -> MetricsRegistry:
    _METRICS.disable()
    return _METRICS


def active_recorder() -> Optional[RunRecorder]:
    return _RECORDER


def set_recorder(recorder: Optional[RunRecorder]) -> Optional[RunRecorder]:
    """Install (or clear, with ``None``) the ambient recorder; returns the
    previous one so callers can restore it."""
    global _RECORDER
    previous = _RECORDER
    _RECORDER = recorder
    return previous


@contextmanager
def observed(
    metrics_out: Optional[Union[str, Path]] = None,
    tool: str = "repro",
    config: Optional[Dict[str, Any]] = None,
) -> Iterator[Tuple[MetricsRegistry, Optional[RunRecorder]]]:
    """Enable metrics (and optionally a JSONL recorder) for a code block.

    On exit the previous enabled/recorder state is restored; if a recorder
    was opened, a final ``metrics_snapshot`` is appended before the
    ``run_end`` record, so every ``observed`` stream is self-contained.
    """
    was_enabled = _METRICS.enabled
    registry = enable_metrics()
    recorder = (
        RunRecorder(metrics_out, tool=tool, config=config)
        if metrics_out is not None else None
    )
    previous = set_recorder(recorder) if recorder is not None else None
    try:
        yield registry, recorder
    except BaseException:
        if recorder is not None:
            recorder.record_metrics(registry)
            recorder.close(status="error")
        raise
    finally:
        if recorder is not None:
            set_recorder(previous)
            if not recorder._closed:
                recorder.record_metrics(registry)
                recorder.close(status="ok")
        if not was_enabled:
            _METRICS.disable()


# -- hot-path hooks ---------------------------------------------------------


def record_route_attempt(result: Any) -> None:
    """One unicast attempt: outcome counters + an optional stream event.

    ``result`` is a :class:`repro.routing.result.RouteResult`; the hook
    only reads it, and reads nothing at all when observability is off.
    """
    reg, rec = _METRICS, _RECORDER
    if not reg.enabled and rec is None:
        return
    status = result.status.value
    condition = result.condition.value
    hops = result.hops
    detour = result.detour
    if reg.enabled:
        reg.counter("route.attempts").inc()
        reg.counter("route." + status.replace("-", "_")).inc()
        reg.counter("route.condition." + condition).inc()
        reg.histogram("route.hops").observe(hops)
        if detour is not None:
            reg.histogram("route.detour").observe(detour)
    if rec is not None:
        rec.emit(
            "route_attempt",
            router=result.router,
            status=status,
            condition=condition,
            hamming=result.hamming,
            hops=hops,
            detour=detour,
        )


def record_routing_batch(result: Any) -> None:
    """One batched routing kernel call: batch counters, one stream event.

    ``result`` is a :class:`repro.routing.batch.BatchRouteResult`.  The
    batch kernel deliberately does **not** fire per-attempt
    ``route_attempt`` hooks — a single call can cover 10^5 routes — but
    it keeps the ``route.*`` counters in sync by incrementing them with
    batch totals, so counter-based consumers see the same numbers either
    way.  The stream gets one ``routing_batch`` event carrying the batch
    shape, the dispatched kernel, and per-status/per-condition counts.
    """
    reg, rec = _METRICS, _RECORDER
    if not reg.enabled and rec is None:
        return
    statuses = result.status_counts()
    conditions = result.condition_counts()
    hops_sum = int(result.hops.sum())
    if reg.enabled:
        reg.counter("routing.batch_calls").inc()
        reg.counter("routing.batch_routes").inc(result.routes)
        reg.counter("route.attempts").inc(result.routes)
        for status, count in statuses.items():
            reg.counter("route." + status.replace("-", "_")).inc(count)
        for condition, count in conditions.items():
            reg.counter("route.condition." + condition).inc(count)
        reg.histogram("routing.batch_size").observe(result.routes)
    if rec is not None:
        rec.emit(
            "routing_batch",
            n=result.topo.dimension,
            trials=result.trials,
            pairs=result.pairs,
            routes=result.routes,
            tie_break=result.tie_break,
            kernel=result.kernel,
            statuses=statuses,
            conditions=conditions,
            hops_sum=hops_sum,
        )


def record_gs_batch(n: int, batch: int, kernel: str, rounds: Any) -> None:
    """One batched safety-level kernel call.

    ``rounds`` is the per-trial stabilization-round vector the kernel
    already computed; the hook reduces it to a bounded histogram (rounds
    never exceed ``n - 1``), so event size is O(n) regardless of batch.
    """
    reg, rec = _METRICS, _RECORDER
    if not reg.enabled and rec is None:
        return
    if reg.enabled:
        reg.counter("gs.batch_calls").inc()
        reg.counter("gs.trials").inc(batch)
        reg.counter("gs.kernel." + kernel).inc()
        reg.histogram("gs.batch_size").observe(batch)
    if rec is not None:
        import numpy as np

        counts = np.bincount(np.asarray(rounds, dtype=np.int64))
        hist = {int(r): int(c) for r, c in enumerate(counts) if c}
        rec.emit(
            "gs_batch",
            n=n,
            batch=batch,
            kernel=kernel,
            rounds_hist=hist,
            rounds_max=int(max(hist)) if hist else 0,
            rounds_sum=int(sum(r * c for r, c in hist.items())),
        )


def record_incremental_update(n: int, stats: Any) -> None:
    """One fault delta applied by the incremental level engine.

    ``stats`` is a :class:`repro.safety.incremental.DeltaStats`.  Besides
    the update/fallback counters, the dirty-seed and wave histograms are
    what make the engine's central claim auditable from ``repro stats``:
    dirty sets stay small (bounded neighborhoods) while the message
    accounting matches the full protocol.
    """
    reg, rec = _METRICS, _RECORDER
    if not reg.enabled and rec is None:
        return
    if reg.enabled:
        reg.counter("safety.incremental_updates").inc()
        reg.counter("safety.incremental_messages").inc(stats.messages)
        if stats.fallback:
            reg.counter("safety.incremental_fallbacks").inc()
        reg.histogram("safety.incremental_dirty").observe(stats.dirty_seed)
        reg.histogram("safety.incremental_waves").observe(stats.rounds)
    if rec is not None:
        rec.emit(
            "incremental_update",
            n=n,
            added=stats.added,
            removed=stats.removed,
            dirty_seed=stats.dirty_seed,
            dirty_total=stats.dirty_total,
            changed=stats.changed,
            rounds=stats.rounds,
            messages=stats.messages,
            fallback=stats.fallback,
        )


def record_service_batch(
    n: int,
    epoch: int,
    routes: int,
    rejected: int,
    backend: str,
    queue_us: int,
    exec_us: int,
    entries: Optional[int] = None,
) -> None:
    """One micro-batch flushed by the routing service.

    ``routes`` requests went through the kernel, ``rejected`` were
    refused pre-kernel (faulty endpoint at this epoch — still answered,
    never dropped).  ``queue_us`` is the oldest request's wait inside the
    batching window, ``exec_us`` the kernel-plus-demux wall time; the two
    histograms are what make the size/deadline window tunable from
    ``repro stats`` output instead of guesswork.  ``entries`` counts the
    batcher entries the flush aggregated (block submissions carry many
    routes per entry; omitted when every entry is a single pair).
    """
    reg, rec = _METRICS, _RECORDER
    if not reg.enabled and rec is None:
        return
    if reg.enabled:
        reg.counter("service.batches").inc()
        reg.counter("service.batch_routes").inc(routes)
        reg.counter("service.requests").inc(routes + rejected)
        reg.counter("service.rejected").inc(rejected)
        reg.histogram("service.batch_size").observe(routes + rejected)
        reg.histogram("service.queue_us").observe(queue_us)
        reg.histogram("service.exec_us").observe(exec_us)
    if rec is not None:
        payload = dict(
            n=n,
            epoch=epoch,
            routes=routes,
            rejected=rejected,
            backend=backend,
            queue_us=queue_us,
            exec_us=exec_us,
        )
        if entries is not None:
            payload["entries"] = entries
        rec.emit("service_batch", **payload)


def record_block_submission(pairs: int) -> None:
    """One block submission (many pairs, one future) entering a batcher."""
    reg = _METRICS
    if not reg.enabled:
        return
    reg.counter("service.blocks").inc()
    reg.histogram("service.block_pairs").observe(pairs)


def record_wire_frame(op: int, payload_len: int, error: bool = False) -> None:
    """One binary RPC frame decoded (or rejected) by the server.

    Counter-only — per-frame stream events would swamp the recorder at
    wire rates.  ``error`` covers both framing violations and dispatch
    failures answered with an error frame.
    """
    reg = _METRICS
    if not reg.enabled:
        return
    reg.counter("service.wire_frames").inc()
    if error:
        reg.counter("service.wire_errors").inc()
    reg.histogram("service.wire_payload").observe(payload_len)


def record_shard_request(tenant: str, routes: int, error: bool = False) -> None:
    """One request resolved through the shard router, by tenant outcome."""
    reg = _METRICS
    if not reg.enabled:
        return
    reg.counter("shard.requests").inc(routes)
    if error:
        reg.counter("shard.errors").inc()


def record_shard_down(shard_id: int, tenants: int) -> None:
    """One shard confirmed dead by the router (injected or inferred).

    Counter-only: the full story (who moved where, how fast) belongs to
    the ``shard_failover`` event fired by :func:`record_shard_failover`
    once recovery completes; this counter exists so dashboards can see
    deaths even when failover is disabled and tenants fail fast.
    """
    reg = _METRICS
    if not reg.enabled:
        return
    reg.counter("service.shard_down").inc()
    reg.histogram("service.shard_down_tenants").observe(tenants)


def record_shard_failover(
    shard_id: int,
    tenants: int,
    moved: int,
    failover_ms: float,
    epochs_replayed: int,
    detected: str,
) -> None:
    """One completed shard failover: tenants re-placed on survivors.

    ``failover_ms`` spans confirm-death → every tenant re-placed with
    its fault journal replayed (the recovery-time metric the bench soak
    gates as p99).  ``detected`` says how death was established:
    ``"injected"`` (an operator ``kill_shard``) or ``"inferred"`` (the
    failure detector's probe timeouts) — the paper's oracle-vs-syndrome
    distinction one layer up.
    """
    reg, rec = _METRICS, _RECORDER
    if not reg.enabled and rec is None:
        return
    if reg.enabled:
        reg.counter("service.failover_count").inc()
        reg.histogram("service.failover_ms").observe(failover_ms)
        reg.histogram("service.failover_tenants").observe(moved)
    if rec is not None:
        rec.emit(
            "shard_failover",
            shard=shard_id,
            tenants=tenants,
            moved=moved,
            failover_ms=round(failover_ms, 3),
            epochs_replayed=epochs_replayed,
            detected=detected,
        )


def record_shed_request(tenant: str, rows: int) -> None:
    """One request refused by admission control (load shed, E_OVERLOAD).

    Counter-only by design: sheds happen exactly when the service is
    drowning, so the hook must stay as close to free as a counter bump.
    """
    reg = _METRICS
    if not reg.enabled:
        return
    reg.counter("service.shed_requests").inc()
    reg.histogram("service.shed_rows").observe(rows)


def record_epoch_swap(
    n: int,
    epoch: int,
    added: int,
    removed: int,
    faults: int,
    publish_us: int,
    fallback: bool,
    spare: bool = True,
    flip_us: int = 0,
) -> None:
    """One fault-epoch swap published by the service's epoch manager.

    Fired after the new shared-memory table is sealed and the service
    reference has swapped — every batch flushed from this point routes
    against epoch ``epoch``.  ``publish_us`` is the off-request-path cost
    (re-stabilize + seal), ``flip_us`` the only slice the request path
    can contend with, and ``spare`` says whether the table landed in a
    warm-spare segment (hit) or an overflow allocation (miss).  The delta
    bookkeeping itself (dirty sets, waves, protocol messages) is already
    covered by the engine's ``incremental_update`` event; this one
    records the *service-level* transition and its latency split.
    """
    reg, rec = _METRICS, _RECORDER
    if not reg.enabled and rec is None:
        return
    if reg.enabled:
        reg.counter("service.epoch_swaps").inc()
        reg.counter("service.spare_hits" if spare
                    else "service.spare_misses").inc()
        reg.histogram("service.publish_us").observe(publish_us)
        reg.histogram("service.flip_us").observe(flip_us)
    if rec is not None:
        rec.emit(
            "epoch_swap",
            n=n,
            epoch=epoch,
            added=added,
            removed=removed,
            faults=faults,
            publish_us=publish_us,
            fallback=fallback,
            spare=spare,
            flip_us=flip_us,
        )


def record_sim_drop(reason: str) -> None:
    """One message lost by the simulator network, by cause.

    Fired from ``Network._drop`` for every refused delivery, so lost
    messages show up in ``repro stats`` as ``sim.dropped.<reason>``
    counters instead of vanishing into the (usually disabled) trace.
    Counter-only: per-message stream events would swamp chaos runs.
    """
    reg = _METRICS
    if not reg.enabled:
        return
    reg.counter("sim.dropped." + reason.replace("-", "_")).inc()


def record_chaos_run(record: Dict[str, Any]) -> None:
    """One resilient delivery under a chaos plan.

    ``record`` is the flat dict a
    :class:`repro.routing.resilient.ResilientResult` reduces to (see
    ``chaos_record()``) — already JSON-primitive, matching the
    ``chaos_run`` event schema.
    """
    reg, rec = _METRICS, _RECORDER
    if not reg.enabled and rec is None:
        return
    delivered = record["status"] == "delivered"
    if reg.enabled:
        reg.counter("chaos.runs").inc()
        reg.counter("chaos.delivered" if delivered
                    else "chaos.failed_detected").inc()
        reg.counter("chaos.retries").inc(record["retries"])
        reg.counter("chaos.node_kills").inc(record["node_kills"])
        reg.counter("chaos.link_kills").inc(record["link_kills"])
        reg.counter("chaos.tampered").inc(record["tampered"])
        reg.counter("chaos.duplicates").inc(record["duplicates"])
        reg.histogram("chaos.attempts").observe(record["attempts"])
        if record.get("latency") is not None:
            reg.histogram("chaos.latency").observe(record["latency"])
    if rec is not None:
        rec.emit("chaos_run", **record)


def record_campaign_cell(record: Dict[str, Any]) -> None:
    """One completed campaign design point (aggregate cell responses).

    ``record`` is the flat payload of the ``campaign_cell`` event: the
    cell's identity and factor levels plus its aggregated responses, all
    JSON primitives (the ``conditions`` histogram is a plain dict).
    """
    reg, rec = _METRICS, _RECORDER
    if not reg.enabled and rec is None:
        return
    if reg.enabled:
        reg.counter("campaign.cells").inc()
        reg.counter("campaign.trials").inc(record["trials"])
        reg.counter("campaign.delivered").inc(record["delivered"])
        reg.histogram("campaign.delivery_rate").observe(
            record["delivery_rate"])
    if rec is not None:
        rec.emit("campaign_cell", **record)


def record_campaign_fit(record: Dict[str, Any]) -> None:
    """One fitted response surface from the campaign analysis stage."""
    reg, rec = _METRICS, _RECORDER
    if not reg.enabled and rec is None:
        return
    if reg.enabled:
        reg.counter("campaign.fits").inc()
    if rec is not None:
        rec.emit("campaign_fit", **record)


def record_sweep(
    master_seed: int,
    trials: int,
    jobs: int,
    chunks: int,
    elapsed_s: float,
    chunk_seconds: Sequence[float] = (),
) -> None:
    """One sweep-engine run (one Monte-Carlo cell): throughput telemetry."""
    reg, rec = _METRICS, _RECORDER
    if not reg.enabled and rec is None:
        return
    if reg.enabled:
        reg.counter("sweep.runs").inc()
        reg.counter("sweep.trials").inc(trials)
        reg.counter("sweep.chunks").inc(chunks)
        reg.gauge("sweep.jobs").set(jobs)
        timer = reg.timer("sweep.chunk")
        for sec in chunk_seconds:
            timer.observe(sec)
        reg.timer("sweep.run").observe(elapsed_s)
    if rec is not None:
        rec.emit(
            "sweep",
            master_seed=master_seed,
            trials=trials,
            jobs=jobs,
            chunks=chunks,
            elapsed_s=round(elapsed_s, 6),
            trials_per_s=round(trials / elapsed_s, 3) if elapsed_s > 0 else 0.0,
        )
