"""Typed, schema-versioned telemetry events.

Every record in a run's JSONL stream is a flat JSON object with three
envelope fields plus per-type payload fields:

``v``
    Schema version (integer).  Consumers must reject streams whose major
    version they do not know; see the version policy in DESIGN.md's
    Observability section.
``seq``
    0-based position in the stream — monotonically increasing, assigned
    by the recorder.  Lets consumers detect truncated or interleaved
    streams without trusting file order.
``type``
    One of :data:`EVENT_TYPES`.

The taxonomy (payload field -> required?) is deliberately small; new
event types or *optional* fields are a compatible (same-version) change,
while removing or re-typing a required field bumps :data:`SCHEMA_VERSION`.
This module is the single source of truth — the recorder emits through
it and ``repro stats`` validates against it, so the two cannot drift.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Mapping

__all__ = [
    "SCHEMA_VERSION",
    "EVENT_TYPES",
    "SchemaError",
    "validate_event",
    "validate_stream",
]

#: Version stamped into (and required of) every event envelope.
SCHEMA_VERSION = 1

#: type -> {field: required?}.  Envelope fields (v, seq, type) are implicit.
EVENT_TYPES: Dict[str, Dict[str, bool]] = {
    # First record of every run: identity + provenance.
    "manifest": {
        "run_id": True,        # random 128-bit hex, unique per run
        "entropy": True,       # fresh OS entropy captured at open (hex)
        "started_at": True,    # wall-clock ISO-8601
        "tool": True,          # emitting program, e.g. "repro.cli"
        "git_rev": False,      # repo HEAD if resolvable
        "python": False,
        "platform": False,
        "config": False,       # free-form run configuration object
    },
    # One unicast attempt through the safety-level router.
    "route_attempt": {
        "router": True,
        "status": True,        # RouteStatus value string
        "condition": True,     # C1 / C2 / C3 / none
        "hamming": True,
        "hops": True,
        "detour": False,       # present iff delivered
    },
    # One compute_safety_levels_batch kernel call.
    "gs_batch": {
        "n": True,             # cube dimension
        "batch": True,         # trials in this call
        "kernel": True,        # "swar" | "sorted" | "packed"
        "rounds_hist": True,   # {stabilization round -> trial count}
        "rounds_max": True,
        "rounds_sum": True,
    },
    # One fault delta applied by the incremental level engine.
    "incremental_update": {
        "n": True,             # cube dimension
        "added": True,         # node faults added by this delta
        "removed": True,       # node faults removed (recoveries)
        "dirty_seed": True,    # nodes seeded dirty by the toggles
        "dirty_total": True,   # node evaluations across all waves
        "changed": True,       # level assignments that changed
        "rounds": True,        # change-bearing waves == GS rounds
        "messages": True,      # on-change protocol messages
        "fallback": True,      # True when whole-array sweeps ran instead
    },
    # One route_unicast_batch() kernel call: a (trials, pairs) matrix of
    # unicast attempts summarized as counts, not per-attempt events.
    "routing_batch": {
        "n": True,             # cube dimension
        "trials": True,        # level-matrix rows in this call
        "pairs": True,         # routes per trial
        "routes": True,        # trials * pairs
        "tie_break": True,     # lowest-dim / highest-dim / random
        "kernel": True,        # "vectorized" | "scalar" | "packed"
        "statuses": True,      # {RouteStatus value -> route count}
        "conditions": True,    # {C1/C2/C3/none -> route count}
        "hops_sum": True,      # total links traversed across the batch
    },
    # One resilient unicast delivered (or detected-failed) under a chaos
    # plan: the per-scenario record of the robustness harness.
    "chaos_run": {
        "n": True,             # cube dimension
        "hamming": True,       # H(source, dest)
        "status": True,        # "delivered" | "failed-detected"
        "stage": True,         # ladder stage that ended the run:
                               #   optimal / suboptimal / dfs / none
        "attempts": True,      # delivery attempts launched (>= 1)
        "retries": True,       # attempts - 1
        "node_kills": True,    # mid-run node failures injected
        "link_kills": True,    # mid-run link failures injected
        "tampered": True,      # messages dropped/delayed/duplicated by chaos
        "duplicates": True,    # duplicate deliveries suppressed at the dest
        "stale_reroutes": True,  # re-routes decided on stale levels
        "hops": True,          # data-message links traversed, all attempts
        "latency": False,      # ticks to first delivery (absent on failure)
    },
    # One micro-batch flushed by the routing service: many concurrent
    # route requests aggregated into a single kernel call.
    "service_batch": {
        "n": True,             # cube dimension
        "epoch": True,         # fault epoch the batch was routed against
        "routes": True,        # requests routed through the kernel
        "rejected": True,      # requests refused (faulty endpoint) pre-kernel
        "backend": True,       # "inline" | "pool"
        "queue_us": True,      # oldest request's wait in the batch window
        "exec_us": True,       # kernel + demux wall time
        "entries": False,      # batcher entries aggregated (block
                               # submissions carry many routes per entry)
    },
    # One fault epoch swap: the epoch manager re-stabilized the level
    # table (incrementally) and published a fresh shared-memory segment.
    "epoch_swap": {
        "n": True,             # cube dimension
        "epoch": True,         # the *new* epoch number
        "added": True,         # node faults added by the triggering event
        "removed": True,       # node faults removed (recoveries)
        "faults": True,        # total faulty nodes in the new epoch
        "publish_us": True,    # re-stabilize + publish wall time
        "fallback": True,      # incremental engine fell back to full sweeps
        "spare": False,        # table sealed into a warm-spare segment
        "flip_us": False,      # pointer-flip slice visible to requests
    },
    # One completed shard failover: a dead shard's tenants re-placed on
    # survivors with their fault journals replayed exactly.
    "shard_failover": {
        "shard": True,           # the shard confirmed dead
        "tenants": True,         # tenants that lived on it
        "moved": True,           # tenants successfully re-placed
        "failover_ms": True,     # confirm-death -> every tenant recovered
        "epochs_replayed": True,  # journal deltas replayed across tenants
        "detected": True,        # "injected" (kill) | "inferred" (probes)
    },
    # One run_sweep() execution (one Monte-Carlo cell).
    "sweep": {
        "master_seed": True,
        "trials": True,
        "jobs": True,
        "chunks": True,
        "elapsed_s": True,
        "trials_per_s": True,
    },
    # One completed campaign cell: a design point's aggregate responses.
    "campaign_cell": {
        "campaign": True,      # campaign name from the spec
        "cell_id": True,       # stable human-readable cell identity
        "index": True,         # position in the full factorial
        "dim": True,           # cube dimension factor
        "fault_model": True,   # node / link / mixed
        "faults": True,        # static fault count factor
        "chaos": True,         # chaos profile factor (none disables)
        "policy": True,        # safety / resilient / dfs / oracle
        "trials": True,        # Monte-Carlo trials evaluated
        "delivered": True,     # trials that delivered
        "delivery_rate": True,
        "mean_hops": False,    # absent when nothing delivered
        "mean_detour": False,
        "mean_retries": True,
        "mean_latency": False,
        "conditions": True,    # {condition-or-stage -> trial count}
    },
    # One fitted response surface from the campaign analysis stage.
    "campaign_fit": {
        "campaign": True,      # campaign name from the spec
        "dim": True,           # factor group the fit covers
        "fault_model": True,
        "chaos": True,
        "policy": True,
        "response": True,      # delivery_rate / mean_hops / ...
        "kind": True,          # "logistic" | "poly"
        "coeffs": True,        # fitted coefficients, low order first
        "r2": True,            # goodness of fit in response space
        "points": True,        # design points behind the fit
    },
    # One CLI experiment finishing.
    "experiment": {
        "name": True,
        "elapsed_s": True,
        "status": True,        # "ok" | "error"
    },
    # A structured result object (anything satisfying repro.results.ResultLike).
    "result": {
        "kind": True,          # result class name
        "status": True,
        "data": True,          # the result's to_dict() payload
    },
    # A simulator trace record bridged from repro.simcore.trace.Trace.
    "sim_trace": {
        "time": True,
        "event": True,
        "node": True,
        "detail": False,
    },
    # Full MetricsRegistry dump (usually once, just before run_end).
    "metrics_snapshot": {
        "metrics": True,
    },
    # Last record: closes the envelope the manifest opened.
    "run_end": {
        "events": True,        # records emitted before this one
        "wall_s": True,        # seconds since manifest
        "status": True,        # "ok" | "error"
    },
}


class SchemaError(ValueError):
    """An event (or stream) violates the telemetry schema."""


def validate_event(record: Mapping[str, Any],
                   seq: int | None = None) -> None:
    """Raise :class:`SchemaError` unless ``record`` is a valid v1 event."""
    if not isinstance(record, Mapping):
        raise SchemaError(f"event must be an object, got {type(record).__name__}")
    version = record.get("v")
    if version != SCHEMA_VERSION:
        raise SchemaError(
            f"unsupported schema version {version!r} "
            f"(this reader understands v{SCHEMA_VERSION})"
        )
    etype = record.get("type")
    if etype not in EVENT_TYPES:
        raise SchemaError(f"unknown event type {etype!r}")
    if not isinstance(record.get("seq"), int):
        raise SchemaError(f"{etype}: missing integer 'seq'")
    if seq is not None and record["seq"] != seq:
        raise SchemaError(
            f"{etype}: sequence gap — expected seq {seq}, got {record['seq']}"
        )
    spec = EVENT_TYPES[etype]
    for field, required in spec.items():
        if required and field not in record:
            raise SchemaError(f"{etype}: missing required field {field!r}")
    extra = set(record) - set(spec) - {"v", "seq", "type", "ts"}
    if extra:
        raise SchemaError(
            f"{etype}: unknown fields {sorted(extra)} "
            "(extend EVENT_TYPES before emitting new fields)"
        )


def validate_stream(records: Iterable[Mapping[str, Any]]) -> int:
    """Validate a whole run: per-event schema plus stream-level invariants.

    Returns the number of records.  Requires the stream to open with a
    ``manifest``, close with a ``run_end``, and carry gap-free ``seq``
    numbers.
    """
    count = 0
    last_type = None
    for i, record in enumerate(records):
        validate_event(record, seq=i)
        if i == 0 and record["type"] != "manifest":
            raise SchemaError(
                f"stream must open with a manifest, got {record['type']!r}"
            )
        if last_type == "run_end":
            raise SchemaError("records found after run_end")
        last_type = record["type"]
        count += 1
    if count == 0:
        raise SchemaError("empty stream")
    if last_type != "run_end":
        raise SchemaError(
            f"stream truncated: last record is {last_type!r}, not run_end"
        )
    return count
