"""Lightweight process-local metrics: counters, gauges, histograms, timers.

A :class:`MetricsRegistry` is a named bag of instruments that hot paths
update while an experiment runs.  The design goals, in order:

1. **Near-zero overhead when disabled.**  The instrumentation hooks in
   :mod:`repro.obs.instruments` test ``registry.enabled`` before touching
   any instrument, so a disabled registry costs one attribute read and one
   branch per hook — routing and kernel throughput are unaffected (guarded
   by a test and the BENCH_sweep.json trajectory).
2. **No dependencies, no background threads.**  Everything is a plain
   in-process object; snapshots are explicit.
3. **JSON-able snapshots.**  ``registry.snapshot()`` returns primitives
   only, so a snapshot drops straight into the JSONL event stream
   (:mod:`repro.obs.recorder`) as a ``metrics_snapshot`` event.

Instruments are created on first use and live for the registry's
lifetime, so a counter that never fired still appears in the snapshot
with value 0 once pre-registered (see :func:`MetricsRegistry.preregister`)
— downstream consumers can rely on stable key sets.

Registries are not thread-safe by design (the sweep engine parallelises
with *processes*, each of which gets its own registry); guard explicitly
if you ever share one across threads.
"""

from __future__ import annotations

import math
import time
from typing import Dict, Iterable, List, Optional

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Timer",
    "MetricsRegistry",
]


class Counter:
    """Monotonically increasing count (attempts, deliveries, kernel calls)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge")
        self.value += amount

    def snapshot(self) -> float:
        v = self.value
        return int(v) if float(v).is_integer() else v


class Gauge:
    """Last-write-wins instantaneous value (worker count, batch in flight)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount

    def snapshot(self) -> float:
        v = self.value
        return int(v) if float(v).is_integer() else v


class Histogram:
    """Streaming summary of an observed distribution.

    Keeps count / sum / min / max / sum-of-squares (for the variance) in
    O(1) memory, plus a bounded uniform reservoir of raw samples for
    percentile estimates (p50/p95/p99 in the snapshot).  The reservoir is
    Vitter's algorithm R driven by a private LCG, so sampling is
    deterministic for a given observation sequence — snapshots never
    change across reruns of the same workload — and costs a few integer
    ops per observation on top of the running sums.
    """

    __slots__ = ("count", "total", "sq_total", "minimum", "maximum",
                 "_reservoir", "_rng_state")

    #: Reservoir capacity: 2048 samples bounds the p99 estimate's error
    #: to well under the 3% CI regression band at realistic counts.
    RESERVOIR_SIZE = 2048

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.sq_total = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf
        self._reservoir: List[float] = []
        self._rng_state = 0x9E3779B97F4A7C15

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        self.sq_total += value * value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value
        res = self._reservoir
        if len(res) < self.RESERVOIR_SIZE:
            res.append(value)
        else:
            # 64-bit LCG (MMIX constants): cheap, deterministic, and
            # plenty for reservoir index selection.
            self._rng_state = (
                self._rng_state * 6364136223846793005 + 1442695040888963407
            ) & 0xFFFFFFFFFFFFFFFF
            slot = self._rng_state % self.count
            if slot < self.RESERVOIR_SIZE:
                res[slot] = value

    def observe_many(self, values: Iterable[float]) -> None:
        for v in values:
            self.observe(v)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    @property
    def stddev(self) -> float:
        if self.count < 2:
            return 0.0
        var = self.sq_total / self.count - self.mean ** 2
        return math.sqrt(max(0.0, var))

    def percentile(self, q: float) -> float:
        """Estimated ``q``-th percentile (0..100) from the reservoir.

        Exact while the sample count is within the reservoir capacity;
        a uniform-subsample estimate beyond it.  Returns 0.0 when empty.
        """
        if not self._reservoir:
            return 0.0
        ordered = sorted(self._reservoir)
        if len(ordered) == 1:
            return ordered[0]
        pos = (q / 100.0) * (len(ordered) - 1)
        lo = int(pos)
        hi = min(lo + 1, len(ordered) - 1)
        frac = pos - lo
        return ordered[lo] * (1.0 - frac) + ordered[hi] * frac

    def snapshot(self) -> Dict[str, float]:
        snap = {
            "count": self.count,
            "sum": self.total,
            "mean": self.mean,
            "stddev": self.stddev,
            "min": self.minimum if self.count else 0.0,
            "max": self.maximum if self.count else 0.0,
        }
        # Percentile keys only when there is data: empty snapshots keep
        # the historical six-key shape consumers already depend on.
        if self.count:
            ordered = sorted(self._reservoir)
            for q, key in ((50.0, "p50"), (95.0, "p95"), (99.0, "p99")):
                pos = (q / 100.0) * (len(ordered) - 1)
                lo = int(pos)
                hi = min(lo + 1, len(ordered) - 1)
                frac = pos - lo
                snap[key] = ordered[lo] * (1.0 - frac) + ordered[hi] * frac
        return snap


class Timer:
    """A histogram of elapsed seconds with a context-manager front end.

    ``with registry.timer("sweep.chunk"):`` records one observation on
    exit.  The underlying histogram is shared with :class:`Histogram`
    snapshots so timers serialize identically.
    """

    __slots__ = ("histogram", "_start")

    def __init__(self) -> None:
        self.histogram = Histogram()
        self._start: Optional[float] = None

    def observe(self, seconds: float) -> None:
        self.histogram.observe(seconds)

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        if self._start is not None:
            self.histogram.observe(time.perf_counter() - self._start)
            self._start = None

    def snapshot(self) -> Dict[str, float]:
        return self.histogram.snapshot()


class MetricsRegistry:
    """Named instruments plus the master enable switch.

    Instrument getters create on first use and always return the live
    object, so callers may cache references; whether an *update* happens
    is decided by the caller checking :attr:`enabled` (the pattern every
    hook in :mod:`repro.obs.instruments` follows).
    """

    __slots__ = ("enabled", "_counters", "_gauges", "_histograms", "_timers")

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._timers: Dict[str, Timer] = {}

    # -- switches -----------------------------------------------------------

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def reset(self) -> None:
        """Forget every instrument (the enable switch is left alone)."""
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()
        self._timers.clear()

    # -- instruments --------------------------------------------------------

    def counter(self, name: str) -> Counter:
        inst = self._counters.get(name)
        if inst is None:
            inst = self._counters[name] = Counter()
        return inst

    def gauge(self, name: str) -> Gauge:
        inst = self._gauges.get(name)
        if inst is None:
            inst = self._gauges[name] = Gauge()
        return inst

    def histogram(self, name: str) -> Histogram:
        inst = self._histograms.get(name)
        if inst is None:
            inst = self._histograms[name] = Histogram()
        return inst

    def timer(self, name: str) -> Timer:
        inst = self._timers.get(name)
        if inst is None:
            inst = self._timers[name] = Timer()
        return inst

    def preregister(self, counters: Iterable[str] = (),
                    histograms: Iterable[str] = ()) -> None:
        """Materialize instruments up front for a stable snapshot key set."""
        for name in counters:
            self.counter(name)
        for name in histograms:
            self.histogram(name)

    # -- export -------------------------------------------------------------

    def counter_values(self) -> Dict[str, float]:
        return {name: c.snapshot() for name, c in sorted(self._counters.items())}

    def snapshot(self) -> Dict[str, object]:
        """JSON-able dump of every instrument, keys sorted for stable diffs."""
        return {
            "counters": self.counter_values(),
            "gauges": {n: g.snapshot()
                       for n, g in sorted(self._gauges.items())},
            "histograms": {n: h.snapshot()
                           for n, h in sorted(self._histograms.items())},
            "timers": {n: t.snapshot()
                       for n, t in sorted(self._timers.items())},
        }

    def describe(self) -> List[str]:
        """Sorted instrument names, prefixed by kind (diagnostics)."""
        return (
            [f"counter:{n}" for n in sorted(self._counters)]
            + [f"gauge:{n}" for n in sorted(self._gauges)]
            + [f"histogram:{n}" for n in sorted(self._histograms)]
            + [f"timer:{n}" for n in sorted(self._timers)]
        )
