"""JSONL run recording: a manifest-framed, schema-validated event stream.

:class:`RunRecorder` generalizes what :class:`repro.simcore.trace.Trace`
does for one simulator run to a *whole experiment process*: an append-only
stream of typed records, but persisted as JSON Lines, versioned by the
schema in :mod:`repro.obs.events`, and opened/closed by manifest and
run-end envelope records that carry run identity (fresh entropy, config,
git revision) and wall time.  Simulator traces still bridge in untouched
via :meth:`RunRecorder.record_trace`.

Every record is validated *at emit time* against the schema, so a stream
that reaches disk is well-formed by construction; ``repro stats`` and the
CI smoke job re-validate on read (:func:`read_events` /
:func:`validate_run`) to catch truncation and version skew.

The recorder is intentionally process-local: sweep worker processes do
not inherit it (they re-import with the default no-recorder state), so
parallel runs record driver-side aggregates — the ``sweep`` events —
rather than interleaving worker streams.  See DESIGN.md's Observability
section.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import sys
import time
from datetime import datetime, timezone
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Union

from .events import SCHEMA_VERSION, SchemaError, validate_event, validate_stream
from .metrics import MetricsRegistry

__all__ = [
    "RunRecorder",
    "current_git_rev",
    "iter_events",
    "read_events",
    "validate_run",
]


def current_git_rev() -> Optional[str]:
    """The repository HEAD this process runs from, if resolvable."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True, text=True, timeout=5,
            cwd=Path(__file__).resolve().parent,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    rev = out.stdout.strip()
    return rev if out.returncode == 0 and rev else None


def _jsonable(value: Any) -> Any:
    """Best-effort conversion of payload values to JSON primitives."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, (set, frozenset)):
        return sorted(_jsonable(v) for v in value)
    if hasattr(value, "item"):  # numpy scalar
        return value.item()
    if hasattr(value, "tolist"):  # numpy array
        return value.tolist()
    if hasattr(value, "to_dict"):  # ResultLike
        return _jsonable(value.to_dict())
    return str(value)


class RunRecorder:
    """Writes one run's telemetry as schema-valid JSON Lines.

    Opening the recorder writes the manifest; :meth:`close` (or context
    exit) writes the ``run_end`` record and closes the file.  ``emit``
    after close raises.  All writes go through :func:`validate_event`.
    """

    def __init__(
        self,
        path: Union[str, Path],
        tool: str = "repro",
        config: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.path = Path(path)
        self._fh = self.path.open("w", encoding="utf-8")
        self._seq = 0
        self._closed = False
        self._t0 = time.perf_counter()
        self.run_id = os.urandom(16).hex()
        self.emit(
            "manifest",
            run_id=self.run_id,
            entropy=os.urandom(16).hex(),
            started_at=datetime.now(timezone.utc).isoformat(),
            tool=tool,
            git_rev=current_git_rev(),
            python=platform.python_version(),
            platform=sys.platform,
            config=_jsonable(config or {}),
        )

    # -- core ---------------------------------------------------------------

    @property
    def events_emitted(self) -> int:
        return self._seq

    def emit(self, event_type: str, **fields: Any) -> None:
        """Validate and append one event record."""
        if self._closed:
            raise RuntimeError("RunRecorder is closed")
        record = {"v": SCHEMA_VERSION, "seq": self._seq, "type": event_type}
        for key, value in fields.items():
            if value is not None:
                record[key] = _jsonable(value)
        validate_event(record, seq=self._seq)
        self._fh.write(json.dumps(record, separators=(",", ":")) + "\n")
        self._seq += 1

    def close(self, status: str = "ok") -> None:
        if self._closed:
            return
        self.emit(
            "run_end",
            events=self._seq,
            wall_s=round(time.perf_counter() - self._t0, 6),
            status=status,
        )
        self._closed = True
        self._fh.close()

    def __enter__(self) -> "RunRecorder":
        return self

    def __exit__(self, exc_type, *exc) -> None:
        self.close(status="ok" if exc_type is None else "error")

    # -- convenience emitters ----------------------------------------------

    def record_result(self, result: Any) -> None:
        """Record anything satisfying :class:`repro.results.ResultLike`."""
        data = result.to_dict()
        self.emit("result", kind=data.get("kind", type(result).__name__),
                  status=data.get("status", "unknown"), data=data)

    def record_trace(self, trace: Any) -> None:
        """Bridge a :class:`repro.simcore.trace.Trace` into the stream."""
        for rec in trace:
            self.emit("sim_trace", time=rec.time, event=rec.event,
                      node=rec.node, detail=rec.detail)

    def record_metrics(self, registry: MetricsRegistry) -> None:
        self.emit("metrics_snapshot", metrics=registry.snapshot())


# -- readers ----------------------------------------------------------------


def iter_events(path: Union[str, Path]) -> Iterator[Dict[str, Any]]:
    """Yield raw event dicts from a JSONL run file (no validation)."""
    with Path(path).open("r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                yield json.loads(line)


def read_events(path: Union[str, Path]) -> List[Dict[str, Any]]:
    return list(iter_events(path))


def validate_run(path: Union[str, Path]) -> int:
    """Schema-validate a whole run file; returns its record count.

    A line that is not JSON at all is as much a schema violation as a
    bad event, so decode errors surface as :class:`SchemaError` too.
    """
    try:
        return validate_stream(iter_events(path))
    except json.JSONDecodeError as exc:
        raise SchemaError(f"not valid JSON Lines: {exc}") from exc
