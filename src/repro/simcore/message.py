"""Messages exchanged between node processes.

A message is a small immutable record: who sent it, who should receive it
(always a direct neighbor — multi-hop traffic is a *protocol* built from
single-hop messages), a ``kind`` tag that protocols dispatch on, and an
arbitrary payload.  Delivery metadata (send/delivery times) is stamped by
the network layer.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Mapping, Optional

__all__ = [
    "Message",
    "DROP_FAULTY_NODE",
    "DROP_FAULTY_LINK",
    "DROP_LINK_DOWN",
    "DROP_CHAOS",
]

#: Drop reasons recorded by the network when traffic hits a fault.
DROP_FAULTY_NODE = "faulty-node"    # destination node in the static fault set
DROP_FAULTY_LINK = "faulty-link"    # link in the static fault set
DROP_LINK_DOWN = "link_down"        # link killed mid-run (schedule_link_failure)
DROP_CHAOS = "chaos-drop"           # discarded by a chaos interceptor


@dataclass(frozen=True)
class Message:
    """A single-hop message between adjacent nodes.

    Attributes
    ----------
    src, dst:
        Sender and receiver node ids; must be neighbors in the topology.
    kind:
        Protocol-defined tag, e.g. ``"safety-level"`` or ``"unicast"``.
    payload:
        Arbitrary protocol data.  Protocols should treat it as read-only;
        the network never copies it.
    send_time, deliver_time:
        Stamped by the network (``None`` until then).
    """

    src: int
    dst: int
    kind: str
    payload: Any = None
    send_time: Optional[int] = None
    deliver_time: Optional[int] = None

    def stamped(self, send_time: int, deliver_time: int) -> "Message":
        """Copy with delivery metadata filled in."""
        return replace(self, send_time=send_time, deliver_time=deliver_time)

    def __repr__(self) -> str:  # compact, trace-friendly
        return (
            f"Message({self.src}->{self.dst} {self.kind!r}"
            f" @{self.send_time})"
        )


@dataclass(frozen=True)
class DroppedMessage:
    """Record of a message the network refused to deliver."""

    message: Message
    reason: str
    time: int

    def __repr__(self) -> str:
        return f"Dropped({self.message!r} reason={self.reason})"
