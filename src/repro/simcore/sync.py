"""BSP round executor: the paper's synchronous "rounds of information
exchange".

The GS algorithm (and the competing safe-node computations) are presented
as synchronous, round-based protocols: every round, each node consumes the
messages its neighbors sent last round, updates local state, and possibly
sends.  :class:`RoundExecutor` drives attached :class:`BspProcess` instances
through such rounds on top of the event engine, so message accounting and
fault semantics are identical to event-driven runs.

The key measurement (paper Fig. 2) is the *stabilization round*: the last
round in which any node changed protocol state.  A fault-free run
stabilizes at round 0 — "no extra overhead is introduced" — because the
first exchange confirms every level unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Sequence

from ..results import base_record
from .errors import SimError
from .message import Message
from .network import Network
from .node import NodeProcess

__all__ = ["BspProcess", "RoundExecutor", "RoundsResult"]


class BspProcess(NodeProcess):
    """A node process driven by rounds rather than message events.

    The network delivers messages into a private buffer; the executor hands
    the buffered batch to :meth:`on_round` at the round boundary, matching
    the paper's ``parbegin NODE_STATUS(a) parend`` semantics.
    """

    __slots__ = ("_inbox",)

    def __init__(self) -> None:
        super().__init__()
        self._inbox: List[Message] = []

    def on_message(self, msg: Message) -> None:
        self._inbox.append(msg)

    def take_inbox(self) -> List[Message]:
        """Drain and return messages delivered since the last round."""
        batch = self._inbox
        self._inbox = []
        return batch


@dataclass(frozen=True)
class RoundsResult:
    """Outcome of a synchronous run.

    Attributes
    ----------
    rounds_executed:
        Rounds the executor actually drove (includes the final quiet round
        that proves stability when running to quiescence).
    stabilization_round:
        Last round in which some node reported a state change — the
        quantity plotted in the paper's Fig. 2.  Zero for an immediately
        stable system.
    messages_sent:
        Total single-hop messages across the run.
    """

    rounds_executed: int
    stabilization_round: int
    messages_sent: int

    # -- the shared result protocol (repro.results.ResultLike) --------------

    @property
    def status(self) -> str:
        """``"stable"`` when a quiet round was observed (the executor ran
        past the last state change), else ``"budget-exhausted"``."""
        if self.rounds_executed > self.stabilization_round:
            return "stable"
        return "budget-exhausted"

    def to_dict(self) -> Dict[str, Any]:
        return base_record(
            self,
            rounds_executed=self.rounds_executed,
            stabilization_round=self.stabilization_round,
            messages_sent=self.messages_sent,
        )

    def summary(self) -> str:
        return (
            f"rounds: stabilized at round {self.stabilization_round} "
            f"({self.rounds_executed} executed, "
            f"{self.messages_sent} messages, {self.status})"
        )


class RoundExecutor:
    """Drives a network of :class:`BspProcess` nodes through BSP rounds."""

    def __init__(self, net: Network) -> None:
        for node, proc in net.processes.items():
            if not isinstance(proc, BspProcess):
                raise SimError(
                    f"node {node} hosts {type(proc).__name__}, which is not "
                    "a BspProcess"
                )
        self.net = net

    def run(
        self,
        max_rounds: int,
        stop_when_stable: bool = True,
    ) -> RoundsResult:
        """Execute up to ``max_rounds`` rounds.

        With ``stop_when_stable`` the executor halts after the first round
        in which no node changed state and no traffic was generated; the
        paper instead fixes ``D = n - 1`` rounds, which callers get by
        passing ``max_rounds=n-1, stop_when_stable=False``.
        """
        if max_rounds < 0:
            raise SimError("max_rounds must be nonnegative")
        net = self.net
        if not net._started:
            net.start()

        stabilization_round = 0
        rounds = 0
        for round_no in range(1, max_rounds + 1):
            # Deliver everything sent in the previous round (or by
            # on_start, for round 1): one tick per round.
            net.engine.run(until=net.engine.now + 1)
            sent_before = net.stats.sent
            changed_any = False
            for node in net.healthy_nodes():
                proc = net.processes[node]
                assert isinstance(proc, BspProcess)
                inbox = proc.take_inbox()
                if proc.on_round(round_no, inbox):
                    changed_any = True
            rounds = round_no
            if changed_any:
                stabilization_round = round_no
            quiescent = (
                not changed_any
                and net.stats.sent == sent_before
                and net.engine.pending_events == 0
            )
            if stop_when_stable and quiescent:
                break
        # Flush any traffic generated in the final round so message
        # conservation holds.
        net.engine.run(until=net.engine.now + 1)
        net.stats.check_conserved()
        return RoundsResult(
            rounds_executed=rounds,
            stabilization_round=stabilization_round,
            messages_sent=net.stats.sent,
        )
