"""Node processes: the unit of distributed computation.

A :class:`NodeProcess` models one hypercube processor.  Its worldview is
deliberately narrow — exactly the paper's local-information premise:

* it knows its own id and its neighbors' ids (the wiring),
* it can send single-hop messages to neighbors,
* it learns everything else only from received messages.

It has no access to the fault set, other nodes' state, or the global clock
beyond timestamps on its own events.  The experiment harness may peek at
process state *after* a run (that is measurement, not protocol input).
"""

from __future__ import annotations

import abc
from typing import Any, Callable, List, Protocol, Sequence

from .errors import ProtocolError
from .message import Message

__all__ = ["NodeContext", "NodeProcess"]


class NodeContext(Protocol):
    """Capabilities the network hands to an attached node process."""

    def now(self) -> int:
        """Current simulation time."""

    def neighbors(self, node: int) -> Sequence[int]:
        """Neighbor ids of ``node`` (wiring only; health is not revealed)."""

    def send(self, msg: Message, payload_units: int = 0) -> None:
        """Enqueue a single-hop message."""

    def schedule(self, node: int, delay: int,
                 callback: Callable[[], None]) -> None:
        """Run ``callback`` after ``delay`` ticks unless ``node`` has died.

        This is a node's *local timer* — the only clock capability the
        paper's model grants a processor.  The liveness guard belongs to
        the network so a fail-stopped node can never act posthumously.
        """

    def trace(self, event: str, node: int, detail: Any = None) -> None:
        """Append to the run trace."""


class NodeProcess(abc.ABC):
    """Base class for protocol participants.

    Subclasses implement :meth:`on_message` (event-driven protocols) and/or
    :meth:`on_round` (BSP protocols run under
    :class:`repro.simcore.sync.RoundExecutor`).
    """

    __slots__ = ("node_id", "_ctx")

    def __init__(self) -> None:
        self.node_id: int = -1
        self._ctx: NodeContext | None = None

    # -- wiring (called by the network) ---------------------------------------

    def attach(self, node_id: int, ctx: NodeContext) -> None:
        """Bind this process to a node id and network context."""
        self.node_id = node_id
        self._ctx = ctx

    @property
    def attached(self) -> bool:
        return self._ctx is not None

    # -- facilities available to protocol code --------------------------------

    @property
    def ctx(self) -> NodeContext:
        if self._ctx is None:
            raise ProtocolError(
                f"{type(self).__name__} used before being attached"
            )
        return self._ctx

    @property
    def now(self) -> int:
        """Local reading of the simulation clock."""
        return self.ctx.now()

    @property
    def neighbor_ids(self) -> List[int]:
        """Ids of this node's neighbors, dimension-major order."""
        return list(self.ctx.neighbors(self.node_id))

    def send(self, dst: int, kind: str, payload: Any = None,
             payload_units: int = 0) -> None:
        """Send a single-hop message to neighbor ``dst``.

        ``payload_units`` is the protocol's own estimate of payload size
        (e.g. length of a carried visited-node history) so experiments can
        compare message *volume*, not just count.
        """
        self.ctx.send(
            Message(src=self.node_id, dst=dst, kind=kind, payload=payload),
            payload_units=payload_units,
        )

    def after(self, delay: int, callback: Callable[[], None]) -> None:
        """Arm a local timer: ``callback`` fires ``delay`` ticks from now,
        silently cancelled if this node fail-stops first.  Timeout-based
        protocols (ACK retransmission, failure suspicion) build on this."""
        self.ctx.schedule(self.node_id, delay, callback)

    def trace(self, event: str, detail: Any = None) -> None:
        """Record a protocol-level trace event attributed to this node."""
        self.ctx.trace(event, self.node_id, detail)

    # -- protocol hooks ---------------------------------------------------------

    def on_start(self) -> None:
        """Called once before any message flows."""

    def on_message(self, msg: Message) -> None:
        """Called at delivery time of each message addressed to this node."""
        raise ProtocolError(
            f"{type(self).__name__} received a message but does not "
            "implement on_message"
        )

    def on_neighbor_failure(self, neighbor: int) -> None:
        """Local fault detection (paper assumption 2): invoked when an
        adjacent node fails mid-run.  Default: ignore."""

    def on_link_failure(self, neighbor: int) -> None:
        """Local *link*-fault detection (Section 4.1): invoked when the
        link to ``neighbor`` fails mid-run while both endpoints live.
        Distinguishable from :meth:`on_neighbor_failure` — the neighbor
        is still up, just unreachable directly.  Default: ignore."""

    def on_round(self, round_no: int, inbox: Sequence[Message]) -> bool:
        """BSP hook: consume last round's inbox, send this round's traffic.

        Returns True if the node's protocol state *changed* this round;
        the round executor uses the disjunction over nodes to detect global
        stabilization (the Fig. 2 measurement).
        """
        raise ProtocolError(
            f"{type(self).__name__} used under a round executor but does "
            "not implement on_round"
        )
