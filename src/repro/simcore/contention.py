"""Store-and-forward traffic simulation with link contention.

The protocols elsewhere in :mod:`repro.simcore` treat links as infinitely
wide (every message advances one hop per tick).  Real hypercube machines
serialize: one message per link per direction per tick.  This module adds
a batch traffic simulator for *routing-scheme evaluation under load*:

* a set of unicasts is injected (all at t=0 or on a per-message schedule),
* each tick, every directed link forwards at most one queued message
  (FIFO per output port, deterministic port service order),
* the next hop of a message is decided when it lands on a node, by a
  pluggable per-scheme policy that sees (current node, destination,
  packet) — the same information the paper's algorithm uses.

The output is per-message latency/queueing and per-link utilization,
feeding the E16 experiment: does the freedom in "highest safety level,
ties arbitrary" help once traffic actually queues?
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..core.faults import FaultSet
from ..core.topology import Topology
from ..results import base_record

__all__ = ["Packet", "NextHopPolicy", "TrafficResult", "simulate_traffic"]


@dataclass
class Packet:
    """One unicast message in the traffic simulation."""

    pid: int
    source: int
    dest: int
    inject_time: int = 0
    # -- filled by the simulator --------------------------------------------
    current: int = -1
    hops: int = 0
    deliver_time: Optional[int] = None
    dropped_reason: Optional[str] = None

    @property
    def delivered(self) -> bool:
        return self.deliver_time is not None

    @property
    def latency(self) -> Optional[int]:
        """Ticks from injection to delivery (None if not delivered)."""
        if self.deliver_time is None:
            return None
        return self.deliver_time - self.inject_time

    @property
    def queueing(self) -> Optional[int]:
        """Ticks spent waiting for links (latency minus hop count)."""
        lat = self.latency
        return None if lat is None else lat - self.hops


#: Decides the next hop: ``policy(node, dest, packet) -> neighbor or None``
#: (None aborts the packet in place).  Policies must be deterministic per
#: call to keep runs reproducible; randomness comes via closures over
#: seeded rngs.
NextHopPolicy = Callable[[int, int, "Packet"], Optional[int]]


@dataclass
class TrafficResult:
    """Aggregate of one traffic run."""

    packets: List[Packet]
    link_busy_ticks: Dict[Tuple[int, int], int]
    ticks: int

    @property
    def delivered(self) -> int:
        return sum(1 for p in self.packets if p.delivered)

    @property
    def dropped(self) -> int:
        return sum(1 for p in self.packets if p.dropped_reason)

    def latencies(self) -> List[int]:
        return [p.latency for p in self.packets if p.latency is not None]

    @property
    def mean_latency(self) -> float:
        lats = self.latencies()
        return sum(lats) / len(lats) if lats else 0.0

    @property
    def max_latency(self) -> int:
        lats = self.latencies()
        return max(lats) if lats else 0

    @property
    def mean_queueing(self) -> float:
        qs = [p.queueing for p in self.packets if p.queueing is not None]
        return sum(qs) / len(qs) if qs else 0.0

    @property
    def max_link_busy(self) -> int:
        return max(self.link_busy_ticks.values(), default=0)

    # -- the shared result protocol (repro.results.ResultLike) --------------

    @property
    def status(self) -> str:
        """``"delivered"`` when every packet arrived, ``"partial"`` when
        some were dropped/aborted, ``"idle"`` for an empty run."""
        if not self.packets:
            return "idle"
        return "delivered" if self.delivered == len(self.packets) else "partial"

    def to_dict(self) -> Dict[str, Any]:
        return base_record(
            self,
            packets=len(self.packets),
            delivered=self.delivered,
            dropped=self.dropped,
            ticks=self.ticks,
            mean_latency=self.mean_latency,
            max_latency=self.max_latency,
            mean_queueing=self.mean_queueing,
            max_link_busy=self.max_link_busy,
        )

    def summary(self) -> str:
        return (
            f"traffic: {self.delivered}/{len(self.packets)} delivered in "
            f"{self.ticks} ticks, mean latency {self.mean_latency:.2f} "
            f"({self.status})"
        )


def simulate_traffic(
    topo: Topology,
    faults: FaultSet,
    packets: Sequence[Tuple[int, int]],
    policy: NextHopPolicy,
    inject_times: Optional[Sequence[int]] = None,
    max_ticks: int = 10_000,
) -> TrafficResult:
    """Run a batch of unicasts under one-per-link-per-tick contention.

    ``packets`` are (source, dest) pairs; ``inject_times`` defaults to all
    zero.  A packet routed into a faulty neighbor is dropped at that hop
    (fail-stop); a policy returning ``None`` aborts the packet in place.
    The run ends when nothing is queued or pending.
    """
    if inject_times is None:
        inject_times = [0] * len(packets)
    if len(inject_times) != len(packets):
        raise ValueError("inject_times must match packets")

    flights: List[Packet] = []
    for pid, ((s, d), t0) in enumerate(zip(packets, inject_times)):
        topo.validate_node(s)
        topo.validate_node(d)
        if faults.is_node_faulty(s):
            raise ValueError(f"source {topo.format_node(s)} is faulty")
        if t0 < 0:
            raise ValueError("inject times must be nonnegative")
        flights.append(Packet(pid=pid, source=s, dest=d, inject_time=t0,
                              current=s))

    queues: Dict[Tuple[int, int], deque] = {}
    link_busy: Dict[Tuple[int, int], int] = {}
    waiting = deque(sorted(flights, key=lambda p: (p.inject_time, p.pid)))
    tick = 0

    def place(packet: Packet) -> None:
        """Packet sits at ``packet.current`` at time ``tick``: deliver or
        choose an output port."""
        if packet.current == packet.dest:
            packet.deliver_time = tick
            return
        nxt = policy(packet.current, packet.dest, packet)
        if nxt is None:
            packet.dropped_reason = "aborted-by-policy"
            return
        if nxt not in topo.neighbors(packet.current):
            raise ValueError(
                f"policy returned non-neighbor {nxt} from "
                f"{topo.format_node(packet.current)}"
            )
        queues.setdefault((packet.current, nxt), deque()).append(packet)

    while True:
        while waiting and waiting[0].inject_time <= tick:
            place(waiting.popleft())
        moved: List[Packet] = []
        for port in sorted(p for p in queues if queues[p]):
            packet = queues[port].popleft()
            u, v = port
            link_busy[port] = link_busy.get(port, 0) + 1
            if faults.is_node_faulty(v) or faults.is_link_faulty(u, v):
                packet.dropped_reason = "hit-fault"
                continue
            packet.current = v
            packet.hops += 1
            moved.append(packet)
        tick += 1
        for packet in moved:
            place(packet)
        if tick > max_ticks:
            for q in queues.values():
                while q:
                    q.popleft().dropped_reason = "max-ticks"
            break
        if not waiting and not any(queues.values()):
            break

    return TrafficResult(packets=flights, link_busy_ticks=link_busy,
                         ticks=tick)
