"""Structured event tracing for simulator runs.

A trace is an append-only list of typed records (sends, deliveries, drops,
state changes).  Tests use traces to assert protocol behaviour ("the unicast
visited exactly these nodes in this order"); examples use them to print the
paper's walk-throughs.

Traces are one simulator run's view; the run-level generalization is the
schema-versioned JSONL stream of :mod:`repro.obs` — a whole trace bridges
into that stream via :meth:`Trace.to_events` (or
``RunRecorder.record_trace``) as ``sim_trace`` events.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterator, List, Optional

__all__ = ["TraceRecord", "Trace"]


@dataclass(frozen=True)
class TraceRecord:
    """One trace entry.

    ``event`` is a short tag (``"send"``, ``"deliver"``, ``"drop"``,
    ``"state"``); ``node`` the acting node; ``detail`` free-form data.
    """

    time: int
    event: str
    node: int
    detail: Any = None

    def __repr__(self) -> str:
        return f"[t={self.time}] {self.event} node={self.node} {self.detail!r}"


class Trace:
    """Append-only trace with simple filtering helpers."""

    __slots__ = ("_records", "_enabled")

    def __init__(self, enabled: bool = True) -> None:
        self._records: List[TraceRecord] = []
        self._enabled = enabled

    @property
    def enabled(self) -> bool:
        return self._enabled

    def record(self, time: int, event: str, node: int, detail: Any = None) -> None:
        """Append a record (no-op when tracing is disabled)."""
        if self._enabled:
            self._records.append(TraceRecord(time, event, node, detail))

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._records)

    def __getitem__(self, idx: int) -> TraceRecord:
        return self._records[idx]

    def filter(
        self,
        event: Optional[str] = None,
        node: Optional[int] = None,
        predicate: Optional[Callable[[TraceRecord], bool]] = None,
    ) -> List[TraceRecord]:
        """Records matching all given criteria, in time order."""
        out = []
        for rec in self._records:
            if event is not None and rec.event != event:
                continue
            if node is not None and rec.node != node:
                continue
            if predicate is not None and not predicate(rec):
                continue
            out.append(rec)
        return out

    def to_events(self) -> List[Dict[str, Any]]:
        """The trace as ``sim_trace`` event payloads for :mod:`repro.obs`.

        Each payload holds the fields a recorder's ``emit("sim_trace",
        **payload)`` expects; ``detail`` is stringified when it is not a
        JSON primitive, mirroring the recorder's own coercion.
        """
        out = []
        for rec in self._records:
            detail = rec.detail
            if detail is not None and not isinstance(
                    detail, (bool, int, float, str)):
                detail = repr(detail)
            out.append({"time": rec.time, "event": rec.event,
                        "node": rec.node, "detail": detail})
        return out

    def render(self, formatter: Optional[Callable[[int], str]] = None) -> str:
        """Multi-line human-readable dump; ``formatter`` renders node ids."""
        fmt = formatter or str
        lines = []
        for rec in self._records:
            lines.append(
                f"t={rec.time:>4}  {rec.event:<8} {fmt(rec.node):<10} "
                f"{rec.detail if rec.detail is not None else ''}"
            )
        return "\n".join(lines)
