"""The network: topology + faults + node processes + message delivery.

The network enforces the fault model:

* faulty nodes host no process; anything sent to them is dropped,
* faulty links silently drop traffic in both directions,
* nonfaulty nodes may only send to direct neighbors (anything else is a
  protocol bug and raises :class:`ProtocolError`).

Messages take exactly one tick per hop.  Determinism: deliveries scheduled
at the same tick fire in send order.

Beyond the static fault set, two live-injection entry points model the
Section 2.2 dynamic regime: :meth:`Network.schedule_node_failure` and
:meth:`Network.schedule_link_failure` fail a healthy node/link at an
absolute tick, dropping traffic already in flight toward it.  A chaos
layer (:mod:`repro.chaos`) may additionally install a message
*interceptor* that rewrites each send into explicit deliver/drop fates —
drops, delays and duplicates — while the network keeps exact per-cause
accounting (every sent message is delivered or dropped with a reason,
and every drop reason surfaces as a ``sim.dropped.<reason>`` counter
through :mod:`repro.obs`).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

from ..core.faults import FaultSet, normalize_link
from ..core.topology import Topology
from ..obs.instruments import record_sim_drop
from .engine import Engine
from .errors import InjectionError, ProtocolError, SimError
from .message import (
    DROP_FAULTY_LINK,
    DROP_FAULTY_NODE,
    DROP_LINK_DOWN,
    DroppedMessage,
    Message,
)
from .node import NodeProcess
from .stats import NetworkStats
from .trace import Trace

__all__ = ["Network", "LINK_LATENCY", "FATE_DELIVER", "FATE_DROP",
           "Interceptor"]

#: Ticks for one link traversal.
LINK_LATENCY = 1

#: Fate tags an interceptor may return (see :meth:`Network.set_interceptor`).
FATE_DELIVER = "deliver"
FATE_DROP = "drop"

#: ``interceptor(msg, delay) -> [(FATE_DELIVER, ticks) | (FATE_DROP, reason)]``
Interceptor = Callable[[Message, int], Sequence[Tuple[str, Any]]]


class Network:
    """A simulated faulty-hypercube machine.

    Parameters
    ----------
    topo:
        The interconnect.
    faults:
        Failed nodes/links.  Processes are instantiated only at healthy
        nodes.
    process_factory:
        Called as ``factory(node_id)`` for each healthy node to create its
        :class:`NodeProcess`.
    trace:
        Record per-message events.  Off by default: traces of Monte-Carlo
        sweeps would dominate memory.
    latency:
        Per-hop delay policy: ``latency(src, dst) -> int ticks`` (>= 1).
        Default is the constant ``LINK_LATENCY``.  Deterministic functions
        keep runs reproducible; pass a seeded-rng closure for jitter (the
        asynchronous-GS tests do).
    """

    def __init__(
        self,
        topo: Topology,
        faults: FaultSet,
        process_factory: Callable[[int], NodeProcess],
        trace: bool = False,
        latency: Optional[Callable[[int, int], int]] = None,
    ) -> None:
        faults.validate(topo)
        self.topo = topo
        self.faults = faults
        self.engine = Engine()
        self.stats = NetworkStats()
        self.trace = Trace(enabled=trace)
        self.dropped: List[DroppedMessage] = []
        self._latency = latency
        self._interceptor: Optional[Interceptor] = None
        self.processes: Dict[int, NodeProcess] = {}
        #: Nodes killed mid-run via schedule_node_failure.
        self.dead_nodes: set = set()
        #: Links killed mid-run via schedule_link_failure (normalized pairs).
        self.dead_links: Set[Tuple[int, int]] = set()
        self._started = False
        self._fault_listeners: List[Callable[[int, int], None]] = []
        for node in topo.iter_nodes():
            if not faults.is_node_faulty(node):
                proc = process_factory(node)
                proc.attach(node, _Context(self))
                self.processes[node] = proc

    def add_fault_listener(self, listener: Callable[[int, int], None]) -> None:
        """Register ``listener(node, time)`` for mid-run node failures.

        Fired from the kill path *after* the node is dead and its
        neighbors' ``on_neighbor_failure`` hooks ran, in registration
        order.  This is the fault-delta feed for incremental level
        maintenance: a listener can push the single-node delta straight
        into an :class:`~repro.safety.incremental.IncrementalLevelEngine`
        instead of diffing whole fault sets after the fact.  Link
        failures do not fire it — node safety levels do not model them.
        """
        self._fault_listeners.append(listener)

    # -- lifecycle ----------------------------------------------------------------

    def start(self) -> None:
        """Fire every process's ``on_start`` hook (idempotent guard)."""
        if self._started:
            raise SimError("network already started")
        self._started = True
        for node in sorted(self.processes):
            self.processes[node].on_start()

    def run(self, until: Optional[int] = None,
            max_events: int = 10_000_000) -> int:
        """Start if needed, then drain the event loop.  Returns end time."""
        if not self._started:
            self.start()
        end = self.engine.run(until=until, max_events=max_events)
        if until is None:
            self.stats.check_conserved()
        return end

    # -- live fault injection -----------------------------------------------------

    def schedule_node_failure(self, node: int, time: int) -> None:
        """Fail a currently-healthy node at absolute tick ``time``.

        Models the Section 2.2 dynamic setting: at the scheduled tick the
        node's process is removed (all traffic to it is dropped from then
        on) and every healthy neighbor gets its
        :meth:`NodeProcess.on_neighbor_failure` hook invoked — the local
        fault detection the paper assumes.  Messages already in flight
        toward the node are lost (fail-stop).
        """
        self.topo.validate_node(node)
        if node not in self.processes:
            raise SimError(
                f"{self.topo.format_node(node)} has no live process to fail"
            )
        self.engine.schedule_at(time, lambda: self._kill(node))

    def schedule_link_failure(self, u: int, v: int, time: int) -> None:
        """Fail the healthy ``u``–``v`` link at absolute tick ``time``.

        The symmetric counterpart of :meth:`schedule_node_failure` for the
        Section 4.1 fault class: from the scheduled tick on, traffic over
        the link — including messages already in flight — is dropped with
        reason ``"link_down"``, and both (still-living) endpoints get
        their :meth:`NodeProcess.on_link_failure` hook invoked, modeling
        the local link-fault detection that distinguishes a dead link
        from a dead neighbor.
        """
        self.topo.validate_node(u)
        self.topo.validate_node(v)
        if v not in self.topo.neighbors(u):
            raise InjectionError(
                f"({self.topo.format_node(u)}, {self.topo.format_node(v)}) "
                "is not a link of the topology"
            )
        if self.faults.is_link_faulty(u, v):
            raise InjectionError(
                f"link {self.topo.format_node(u)}-{self.topo.format_node(v)} "
                "is already faulty; nothing to fail"
            )
        self.engine.schedule_at(time, lambda: self._kill_link(u, v))

    def _kill(self, node: int) -> None:
        proc = self.processes.pop(node, None)
        if proc is None:
            return  # already dead (two schedules for the same node)
        self.dead_nodes.add(node)
        self.trace.record(self.engine.now, "fail", node, None)
        for w in self.topo.neighbors(node):
            neighbor_proc = self.processes.get(w)
            if neighbor_proc is not None:
                neighbor_proc.on_neighbor_failure(node)
        # Snapshot before dispatch: a listener may register further
        # listeners while handling the event (the resilient router
        # re-arming is the canonical case), and those must not mutate
        # this iteration — they see the *next* failure, not this one.
        for listener in tuple(self._fault_listeners):
            listener(node, self.engine.now)

    def _kill_link(self, u: int, v: int) -> None:
        link = normalize_link(u, v)
        if link in self.dead_links:
            return  # already dead (two schedules for the same link)
        self.dead_links.add(link)
        self.trace.record(self.engine.now, "link-fail", u, link)
        for end, other in ((u, v), (v, u)):
            proc = self.processes.get(end)
            if proc is not None:
                proc.on_link_failure(other)

    def is_link_down(self, a: int, b: int) -> bool:
        """True if the ``a``–``b`` link was killed mid-run."""
        return normalize_link(a, b) in self.dead_links

    # -- chaos interception -------------------------------------------------------

    def set_interceptor(self, interceptor: Optional[Interceptor]) -> None:
        """Install (or clear) the message interceptor.

        The interceptor sees every submitted message and its nominal delay
        and returns the list of *fates* the wire applies: each
        ``(FATE_DELIVER, ticks)`` entry schedules one delivery (extra
        entries are duplicates, larger ticks are delays), each
        ``(FATE_DROP, reason)`` entry records one loss.  Every fate counts
        as a send, so the conservation invariant (sent = delivered +
        dropped) survives any interception.  Returning an empty list
        raises :class:`InjectionError` — chaos must never lose a message
        silently.
        """
        self._interceptor = interceptor

    # -- message path (used by node contexts) ----------------------------------

    def submit(self, msg: Message, payload_units: int = 0) -> None:
        """Validate, count, and schedule a single-hop message."""
        src, dst = msg.src, msg.dst
        if src not in self.processes:
            raise ProtocolError(f"send from unknown/faulty node {src}")
        if dst not in self.topo.neighbors(src):
            raise ProtocolError(
                f"{self.topo.format_node(src)} tried to send to "
                f"non-neighbor {self.topo.format_node(dst)}"
            )
        now = self.engine.now
        delay = LINK_LATENCY if self._latency is None \
            else int(self._latency(src, dst))
        if delay < 1:
            raise ProtocolError(
                f"latency policy returned {delay}; hops take >= 1 tick"
            )
        fates: Sequence[Tuple[str, Any]] = ((FATE_DELIVER, delay),)
        if self._interceptor is not None:
            fates = list(self._interceptor(msg, delay))
            if not fates:
                raise InjectionError(
                    "interceptor returned no fates; drops must be explicit "
                    "(FATE_DROP, reason) entries"
                )
        for fate, arg in fates:
            if fate == FATE_DELIVER:
                ticks = int(arg)
                if ticks < 1:
                    raise InjectionError(
                        f"interceptor returned delay {ticks}; "
                        "hops take >= 1 tick"
                    )
                stamped = msg.stamped(send_time=now, deliver_time=now + ticks)
                self.stats.record_send(msg.kind, payload_units)
                self.trace.record(now, "send", src, stamped)
                self.engine.schedule_after(
                    ticks, lambda m=stamped: self._deliver(m)
                )
            elif fate == FATE_DROP:
                stamped = msg.stamped(send_time=now, deliver_time=now)
                self.stats.record_send(msg.kind, payload_units)
                self.trace.record(now, "send", src, stamped)
                self._drop(stamped, str(arg), now)
            else:
                raise InjectionError(f"unknown message fate {fate!r}")

    def _deliver(self, msg: Message) -> None:
        now = self.engine.now
        if self.faults.is_link_declared_faulty(msg.src, msg.dst):
            self._drop(msg, DROP_FAULTY_LINK, now)
            return
        if normalize_link(msg.src, msg.dst) in self.dead_links:
            self._drop(msg, DROP_LINK_DOWN, now)
            return
        proc = self.processes.get(msg.dst)
        if proc is None:
            self._drop(msg, DROP_FAULTY_NODE, now)
            return
        self.stats.record_delivery(msg.kind)
        self.trace.record(now, "deliver", msg.dst, msg)
        proc.on_message(msg)

    def _drop(self, msg: Message, reason: str, now: int) -> None:
        self.stats.record_drop(reason)
        record_sim_drop(reason)
        self.dropped.append(DroppedMessage(message=msg, reason=reason, time=now))
        self.trace.record(now, "drop", msg.dst, (reason, msg))

    # -- timers (used by node contexts) -----------------------------------------

    def schedule_timer(self, node: int, delay: int,
                       callback: Callable[[], None]) -> None:
        """Run ``callback`` after ``delay`` ticks, if ``node`` still lives.

        The liveness guard is what makes timers safe under live fault
        injection: a node killed while its retransmission timer is armed
        must not rise from the dead to act on it.
        """
        if delay < 0:
            raise SimError(f"negative timer delay {delay}")
        self.engine.schedule_after(
            delay,
            lambda: callback() if node in self.processes else None,
        )

    # -- conveniences -----------------------------------------------------------

    def process(self, node: int) -> NodeProcess:
        """The process at ``node`` (raises for faulty nodes)."""
        try:
            return self.processes[node]
        except KeyError:
            raise SimError(
                f"node {self.topo.format_node(node)} is faulty; no process"
            ) from None

    def healthy_nodes(self) -> List[int]:
        """Ids of all nodes hosting processes, ascending."""
        return sorted(self.processes)

    def live_faults(self) -> FaultSet:
        """The fault set as of *now*: static faults plus everything killed
        mid-run.  This is what a freshly re-run GS would see."""
        return self.faults.with_nodes(self.dead_nodes).with_links(
            self.dead_links)


class _Context:
    """Per-network :class:`NodeContext` implementation.

    Shared by all processes of one network; it carries no per-node state so
    a single instance would suffice, but the indirection keeps processes
    decoupled from the Network class for testing.
    """

    __slots__ = ("_net",)

    def __init__(self, net: Network) -> None:
        self._net = net

    def now(self) -> int:
        return self._net.engine.now

    def neighbors(self, node: int) -> Sequence[int]:
        return self._net.topo.neighbors(node)

    def send(self, msg: Message, payload_units: int = 0) -> None:
        self._net.submit(msg, payload_units=payload_units)

    def schedule(self, node: int, delay: int,
                 callback: Callable[[], None]) -> None:
        self._net.schedule_timer(node, delay, callback)

    def trace(self, event: str, node: int, detail: Any = None) -> None:
        self._net.trace.record(self._net.engine.now, event, node, detail)
