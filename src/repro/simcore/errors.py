"""Exception types raised by the simulator substrate."""

from __future__ import annotations

__all__ = ["SimError", "ProtocolError", "DeliveryError"]


class SimError(RuntimeError):
    """Base class for simulator failures (engine misuse, bad wiring)."""


class ProtocolError(SimError):
    """A node protocol violated its contract (e.g. sent to a non-neighbor).

    These indicate bugs in protocol implementations, not modeled faults —
    modeled faults silently *drop* traffic instead.
    """


class DeliveryError(SimError):
    """Raised when a test asks for strict delivery and a message was lost."""
