"""Exception types raised by the simulator substrate.

The taxonomy separates three failure families so callers can react
differently to each:

* harness misuse — :class:`SimError` directly, or :class:`ProtocolError`
  and :class:`InjectionError` for, respectively, protocol bugs and
  ill-formed fault injection (a chaos plan naming a nonexistent link,
  an interceptor returning no fates);
* modeled protocol failure — :class:`DeliveryError` and
  :class:`DeliveryTimeout`: the run itself was legal, the *protocol*
  failed to deliver.  These are the only members a resilience layer may
  legitimately catch and degrade on.
"""

from __future__ import annotations

__all__ = [
    "SimError",
    "ProtocolError",
    "InjectionError",
    "DeliveryError",
    "DeliveryTimeout",
]


class SimError(RuntimeError):
    """Base class for simulator failures (engine misuse, bad wiring)."""


class ProtocolError(SimError):
    """A node protocol violated its contract (e.g. sent to a non-neighbor).

    These indicate bugs in protocol implementations, not modeled faults —
    modeled faults silently *drop* traffic instead.
    """


class InjectionError(SimError):
    """A fault-injection request is ill-formed (harness misuse).

    Raised when a chaos plan or interceptor asks for something the fault
    model cannot express: killing a node that is already statically
    faulty, failing a pair that is not a link, out-of-range probabilities,
    or an interceptor that silently discards a message instead of
    returning an explicit drop fate.  Distinct from
    :class:`DeliveryTimeout` so callers can tell "you drove the harness
    wrong" from "the protocol lost the race".
    """


class DeliveryError(SimError):
    """Raised when a test asks for strict delivery and a message was lost."""


class DeliveryTimeout(DeliveryError):
    """A resilient delivery exhausted its retry budget without an ACK.

    This is a *detected* protocol failure (the graceful end of the
    degradation ladder), never a harness bug — raised only when a caller
    opts into strict mode instead of inspecting the returned result.
    """
