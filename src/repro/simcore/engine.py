"""Discrete-event engine.

A minimal, deterministic event loop: events are ``(time, seq, callback)``
triples on a binary heap.  ``seq`` is a monotonically increasing tiebreaker
so two events at the same time always fire in scheduling order — protocol
runs are therefore exactly reproducible.

Time is integer ticks.  One tick is one link traversal; the paper's "rounds
of information exchange" map to one tick per round in the BSP layer built on
top (:mod:`repro.simcore.sync`).
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional, Tuple

from .errors import SimError

__all__ = ["Engine"]

EventCallback = Callable[[], None]


class Engine:
    """A deterministic integer-time discrete-event loop."""

    __slots__ = ("_now", "_seq", "_heap", "_running", "_events_fired")

    def __init__(self) -> None:
        self._now = 0
        self._seq = 0
        self._heap: List[Tuple[int, int, EventCallback]] = []
        self._running = False
        self._events_fired = 0

    # -- introspection ---------------------------------------------------------

    @property
    def now(self) -> int:
        """Current simulation time in ticks."""
        return self._now

    @property
    def pending_events(self) -> int:
        """Number of scheduled-but-unfired events."""
        return len(self._heap)

    @property
    def events_fired(self) -> int:
        """Total events executed since construction."""
        return self._events_fired

    # -- scheduling --------------------------------------------------------------

    def schedule_at(self, time: int, callback: EventCallback) -> None:
        """Run ``callback`` at absolute tick ``time`` (>= now)."""
        if time < self._now:
            raise SimError(
                f"cannot schedule into the past (now={self._now}, t={time})"
            )
        heapq.heappush(self._heap, (time, self._seq, callback))
        self._seq += 1

    def schedule_after(self, delay: int, callback: EventCallback) -> None:
        """Run ``callback`` ``delay`` ticks from now (delay >= 0)."""
        if delay < 0:
            raise SimError(f"negative delay {delay}")
        self.schedule_at(self._now + delay, callback)

    # -- execution ---------------------------------------------------------------

    def run(self, until: Optional[int] = None, max_events: int = 10_000_000) -> int:
        """Drain the event heap; return the finishing time.

        ``until`` stops the clock at a given tick even if later events are
        pending (they stay scheduled).  ``max_events`` guards against
        protocols that generate unbounded traffic.
        """
        if self._running:
            raise SimError("engine is not reentrant")
        self._running = True
        try:
            fired = 0
            while self._heap:
                time, _seq, callback = self._heap[0]
                if until is not None and time > until:
                    break
                heapq.heappop(self._heap)
                self._now = time
                callback()
                self._events_fired += 1
                fired += 1
                if fired > max_events:
                    raise SimError(
                        f"exceeded {max_events} events; runaway protocol?"
                    )
            if until is not None and self._now < until:
                self._now = until
            return self._now
        finally:
            self._running = False

    def step(self) -> bool:
        """Fire the single earliest event.  Returns False if none pending."""
        if self._running:
            raise SimError("engine is not reentrant")
        if not self._heap:
            return False
        time, _seq, callback = heapq.heappop(self._heap)
        self._now = time
        self._running = True
        try:
            callback()
            self._events_fired += 1
        finally:
            self._running = False
        return True
