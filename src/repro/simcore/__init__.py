"""Message-passing simulator substrate.

This package stands in for the paper's hypercube multicomputer hardware.
Protocols run as :class:`NodeProcess` objects that can only see their own
state and single-hop messages; the :class:`Network` enforces the fail-stop
fault model, and the :class:`RoundExecutor` provides the synchronous
"rounds of information exchange" the paper counts.
"""

from .contention import NextHopPolicy, Packet, TrafficResult, simulate_traffic
from .engine import Engine
from .errors import (
    DeliveryError,
    DeliveryTimeout,
    InjectionError,
    ProtocolError,
    SimError,
)
from .message import (
    DROP_CHAOS,
    DROP_FAULTY_LINK,
    DROP_FAULTY_NODE,
    DROP_LINK_DOWN,
    DroppedMessage,
    Message,
)
from .network import FATE_DELIVER, FATE_DROP, LINK_LATENCY, Network
from .node import NodeContext, NodeProcess
from .stats import NetworkStats
from .sync import BspProcess, RoundExecutor, RoundsResult
from .trace import Trace, TraceRecord

__all__ = [
    "NextHopPolicy",
    "Packet",
    "TrafficResult",
    "simulate_traffic",
    "Engine",
    "DeliveryError",
    "DeliveryTimeout",
    "InjectionError",
    "ProtocolError",
    "SimError",
    "DROP_CHAOS",
    "DROP_FAULTY_LINK",
    "DROP_FAULTY_NODE",
    "DROP_LINK_DOWN",
    "DroppedMessage",
    "Message",
    "FATE_DELIVER",
    "FATE_DROP",
    "LINK_LATENCY",
    "Network",
    "NodeContext",
    "NodeProcess",
    "NetworkStats",
    "BspProcess",
    "RoundExecutor",
    "RoundsResult",
    "Trace",
    "TraceRecord",
]
