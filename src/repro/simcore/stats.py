"""Accounting for simulator runs.

The paper's cost claims are message/round counts ("(n-1) rounds of
information exchange", "a history of visited nodes has to be kept as part
of the message"), so the stats layer counts exactly those: messages sent,
delivered, dropped (by reason), per-kind tallies, and payload piggyback
sizes where a protocol declares them.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict

__all__ = ["NetworkStats"]


@dataclass
class NetworkStats:
    """Mutable counters owned by a :class:`~repro.simcore.network.Network`."""

    sent: int = 0
    delivered: int = 0
    dropped: int = 0
    sent_by_kind: Counter = field(default_factory=Counter)
    delivered_by_kind: Counter = field(default_factory=Counter)
    dropped_by_reason: Counter = field(default_factory=Counter)
    #: Sum over messages of protocol-declared payload size (abstract units).
    payload_units: int = 0

    def record_send(self, kind: str, payload_units: int = 0) -> None:
        self.sent += 1
        self.sent_by_kind[kind] += 1
        self.payload_units += payload_units

    def record_delivery(self, kind: str) -> None:
        self.delivered += 1
        self.delivered_by_kind[kind] += 1

    def record_drop(self, reason: str) -> None:
        self.dropped += 1
        self.dropped_by_reason[reason] += 1

    @property
    def in_flight(self) -> int:
        """Messages sent but neither delivered nor dropped yet."""
        return self.sent - self.delivered - self.dropped

    def check_conserved(self) -> None:
        """Every sent message must be delivered or dropped by run end."""
        if self.in_flight != 0:
            raise AssertionError(
                f"message conservation violated: sent={self.sent} "
                f"delivered={self.delivered} dropped={self.dropped}"
            )

    def as_dict(self) -> Dict[str, int]:
        """Flat summary for experiment tables."""
        return {
            "sent": self.sent,
            "delivered": self.delivered,
            "dropped": self.dropped,
            "payload_units": self.payload_units,
        }

    def __repr__(self) -> str:
        return (
            f"NetworkStats(sent={self.sent}, delivered={self.delivered}, "
            f"dropped={self.dropped})"
        )
