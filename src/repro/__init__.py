"""repro — Reliable Unicasting in Faulty Hypercubes Using Safety Levels.

A full reproduction of Jie Wu's safety-level unicasting system
(ICPP 1995 / IEEE Transactions on Computers, Feb 1997):

* :mod:`repro.core` — hypercube & generalized-hypercube topologies, fault
  models, oracle connectivity;
* :mod:`repro.simcore` — the message-passing multicomputer simulator the
  protocols run on;
* :mod:`repro.safety` — safety levels (Definition 1), the distributed GS
  algorithm, the competing Lee–Hayes / Wu–Fernandez safe-node definitions,
  EGS for link faults, generalized-hypercube levels;
* :mod:`repro.routing` — the safety-level unicast (optimal / suboptimal /
  detected-failure) and every baseline router;
* :mod:`repro.broadcast` — the safety-level broadcast extension;
* :mod:`repro.analysis` — experiment harness regenerating each paper
  table/figure;
* :mod:`repro.instances` — the exact instances drawn in the paper's
  figures.

Quickstart::

    from repro.core import Hypercube, FaultSet
    from repro.safety import SafetyLevels
    from repro.routing import route_unicast

    q = Hypercube(4)
    faults = FaultSet.from_addresses(q, ["0011", "0100", "0110", "1001"])
    levels = SafetyLevels.compute(q, faults)
    result = route_unicast(levels, q.parse_node("1110"), q.parse_node("0001"))
    print(result.describe(q.format_node))
"""

from . import analysis, broadcast, core, instances, routing, safety, simcore, viz
from .core import FaultSet, GeneralizedHypercube, Hypercube
from .routing import (
    RouteResult,
    RouteStatus,
    SourceCondition,
    check_feasibility,
    route_unicast,
)
from .safety import SafetyLevels

__version__ = "1.0.0"

__all__ = [
    "analysis",
    "broadcast",
    "core",
    "instances",
    "routing",
    "safety",
    "simcore",
    "viz",
    "FaultSet",
    "GeneralizedHypercube",
    "Hypercube",
    "RouteResult",
    "RouteStatus",
    "SourceCondition",
    "check_feasibility",
    "route_unicast",
    "SafetyLevels",
    "__version__",
]
