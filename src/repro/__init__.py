"""repro — Reliable Unicasting in Faulty Hypercubes Using Safety Levels.

A full reproduction of Jie Wu's safety-level unicasting system
(ICPP 1995 / IEEE Transactions on Computers, Feb 1997):

* :mod:`repro.core` — hypercube & generalized-hypercube topologies, fault
  models, oracle connectivity;
* :mod:`repro.simcore` — the message-passing multicomputer simulator the
  protocols run on;
* :mod:`repro.safety` — safety levels (Definition 1), the distributed GS
  algorithm, the competing Lee–Hayes / Wu–Fernandez safe-node definitions,
  EGS for link faults, generalized-hypercube levels;
* :mod:`repro.routing` — the safety-level unicast (optimal / suboptimal /
  detected-failure) and every baseline router;
* :mod:`repro.broadcast` — the safety-level broadcast extension;
* :mod:`repro.chaos` — seeded mid-flight fault injection (chaos plans,
  controller, run invariants) for the resilient unicast harness;
* :mod:`repro.analysis` — experiment harness regenerating each paper
  table/figure, behind one :class:`~repro.analysis.ExperimentSpec`
  registry;
* :mod:`repro.campaign` — declarative fault-campaign DSE: factorial
  designs, resumable checkpointed runs, response-surface fits, and
  adversarial search for routability-breaking fault sets (the top-level
  name ``repro.campaign`` is the facade *verb* running one; the
  subpackage stays importable as ``from repro.campaign import ...``);
* :mod:`repro.obs` — metrics + structured JSONL run telemetry;
* :mod:`repro.results` — the result protocol every outcome object shares;
* :mod:`repro.api` — the one-stop facade over all of the above;
* :mod:`repro.instances` — the exact instances drawn in the paper's
  figures.

Quickstart::

    import repro

    levels = repro.compute_levels(4, ["0011", "0100", "0110", "1001"])
    result = repro.route(levels, "1110", "0001")
    print(result.summary())

The older deep imports (``repro.routing.route_unicast`` and friends)
remain public and stable; the top-level ``route_unicast`` /
``check_feasibility`` aliases are deprecated in favor of the facade and
now warn (but keep working) when touched.
"""

import warnings as _warnings

from . import (
    analysis,
    api,
    broadcast,
    # The campaign subpackage is imported eagerly so it lands in
    # sys.modules *before* the facade rebinds the top-level name
    # ``repro.campaign`` to the callable verb below — after this,
    # ``from repro.campaign import CampaignSpec`` and
    # ``repro.campaign(spec)`` both work.
    campaign,
    chaos,
    core,
    instances,
    obs,
    results,
    routing,
    safety,
    simcore,
    viz,
)
from .api import (
    campaign,
    campaign_report,
    compute_levels,
    confirm_break,
    record_run,
    resume_campaign,
    route,
    route_batch,
    route_resilient,
    stats,
    sweep,
)
from .core import FaultSet, GeneralizedHypercube, Hypercube
from .results import ResultLike
from .routing import RouteResult, RouteStatus, SourceCondition
from .safety import SafetyLevels

__version__ = "1.1.0"

#: Deprecated top-level aliases -> (replacement hint, canonical object).
_DEPRECATED_ALIASES = {
    "route_unicast": ("repro.route / repro.routing.route_unicast",
                      lambda: routing.route_unicast),
    "check_feasibility": ("repro.routing.check_feasibility",
                          lambda: routing.check_feasibility),
}


def __getattr__(name):
    entry = _DEPRECATED_ALIASES.get(name)
    if entry is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    hint, resolve = entry
    _warnings.warn(
        f"repro.{name} is deprecated; use {hint}",
        DeprecationWarning, stacklevel=2,
    )
    return resolve()


__all__ = [
    "analysis",
    "api",
    "broadcast",
    "chaos",
    "core",
    "instances",
    "obs",
    "results",
    "routing",
    "safety",
    "simcore",
    "viz",
    "FaultSet",
    "GeneralizedHypercube",
    "Hypercube",
    "RouteResult",
    "RouteStatus",
    "SourceCondition",
    "ResultLike",
    "SafetyLevels",
    "compute_levels",
    "route",
    "route_batch",
    "route_resilient",
    "sweep",
    "record_run",
    "stats",
    "campaign",
    "resume_campaign",
    "campaign_report",
    "confirm_break",
    "check_feasibility",
    "route_unicast",
    "__version__",
]
