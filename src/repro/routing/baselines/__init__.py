"""Baseline routers the paper positions itself against.

* :func:`~repro.routing.baselines.oracle.route_oracle` — global-information
  BFS shortest path: the unbeatable reference every scheme is measured
  against.
* :func:`~repro.routing.baselines.sidetrack.route_sidetrack` — Gordon–Stout
  [5]: purely local, reroutes to a random fault-free neighbor when blocked.
* :func:`~repro.routing.baselines.dfs_backtrack.route_dfs` — Chen–Shin [3]:
  depth-first search carrying the visited history in the message,
  backtracking when blocked.
* :func:`~repro.routing.baselines.progressive.route_progressive` —
  Chen–Shin [2]: the simplified progressive variant without backtracking.
* :func:`~repro.routing.baselines.safe_node.route_lee_hayes` — Lee–Hayes
  [7]-style routing over Definition-2 safe nodes.
* :func:`~repro.routing.baselines.safe_node.route_chiu_wu_style` —
  Chiu–Wu [4]-style routing over Definition-3 (Wu–Fernandez) safe nodes.

All share the :class:`~repro.routing.result.RouteResult` contract, so the
comparison experiments treat them uniformly.
"""

from .dfs_backtrack import route_dfs
from .oracle import route_oracle
from .progressive import route_progressive
from .safe_node import route_chiu_wu_style, route_lee_hayes
from .sidetrack import route_sidetrack

__all__ = [
    "route_dfs",
    "route_oracle",
    "route_progressive",
    "route_chiu_wu_style",
    "route_lee_hayes",
    "route_sidetrack",
]
