"""Global-information router: true shortest paths via BFS.

This is the paper's "global-information-based model" idealized: the source
knows the status of every node, so it routes along a genuine shortest path
in the surviving subgraph (or correctly refuses when the destination is
unreachable).  It bounds what any scheme can achieve — the comparison
experiments normalize against it.
"""

from __future__ import annotations

from ...core import partition
from ...core.faults import FaultSet
from ...core.topology import Topology
from ..result import RouteResult, RouteStatus

__all__ = ["route_oracle"]

ROUTER_NAME = "oracle"


def route_oracle(
    topo: Topology, faults: FaultSet, source: int, dest: int
) -> RouteResult:
    """Route along a true shortest path, or abort if none exists."""
    topo.validate_node(source)
    topo.validate_node(dest)
    if faults.is_node_faulty(source):
        raise ValueError(f"source {topo.format_node(source)} is faulty")
    if faults.is_node_faulty(dest):
        raise ValueError(f"destination {topo.format_node(dest)} is faulty")
    h = topo.distance(source, dest)
    path = partition.shortest_path(topo, faults, source, dest)
    if path is None:
        return RouteResult(
            router=ROUTER_NAME, source=source, dest=dest, hamming=h,
            status=RouteStatus.ABORTED_AT_SOURCE,
            detail="destination unreachable (disconnected)",
        )
    return RouteResult(
        router=ROUTER_NAME, source=source, dest=dest, hamming=h,
        status=RouteStatus.DELIVERED, path=path,
    )
