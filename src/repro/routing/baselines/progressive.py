"""Chen–Shin progressive router — no backtracking (paper ref [2]).

The simplified variant of the DFS scheme: routing is *progressive*
(never retreats along the tree), tolerates fewer faults, and produces
non-optimal paths in general.  Our rendition keeps the defining traits:

* local information only (a node sees just its neighbors' health),
* the message carries the set of already-visited nodes purely to avoid
  cycles (no backtrack pointer),
* blocked forward progress falls through to an unvisited spare neighbor;
  if none exists the route fails — it cannot recover.
"""

from __future__ import annotations

from typing import Optional

from ...core.fault_models import RngLike, as_rng
from ...core.faults import FaultSet
from ...core.hypercube import Hypercube
from ..result import RouteResult, RouteStatus

__all__ = ["route_progressive"]

ROUTER_NAME = "progressive"


def route_progressive(
    topo: Hypercube,
    faults: FaultSet,
    source: int,
    dest: int,
    rng: RngLike = None,
    hop_limit: Optional[int] = None,
) -> RouteResult:
    """Progressive (no-backtrack) routing with cycle avoidance.

    Preferred neighbors are tried in random order (the scheme is adaptive,
    not dimension-ordered); spares likewise.  ``hop_limit`` defaults to
    ``2**n`` — the visited-set makes genuine livelock impossible, so this
    is purely a guard.
    """
    topo.validate_node(source)
    topo.validate_node(dest)
    if faults.is_node_faulty(source):
        raise ValueError(f"source {topo.format_node(source)} is faulty")
    if faults.is_node_faulty(dest):
        raise ValueError(f"destination {topo.format_node(dest)} is faulty")
    gen = as_rng(rng)
    h = topo.distance(source, dest)
    limit = topo.num_nodes if hop_limit is None else hop_limit

    visited = {source}
    current = source
    path = [source]
    volume = 0  # visited set rides every hop (cycle avoidance needs it)
    while current != dest:
        if len(path) - 1 >= limit:
            return RouteResult(
                router=ROUTER_NAME, source=source, dest=dest, hamming=h,
                status=RouteStatus.HOP_LIMIT, path=path,
                detail=f"hop budget {limit} exhausted",
            )
        preferred = [
            topo.neighbor_along(current, dim)
            for dim in topo.differing_dimensions(current, dest)
        ]
        spares = [
            v for v in topo.neighbors(current) if v not in preferred
        ]
        nxt = None
        for group in (preferred, spares):
            alive = [
                v for v in group
                if v not in visited and not faults.is_node_faulty(v)
            ]
            if alive:
                nxt = alive[int(gen.integers(len(alive)))]
                break
        if nxt is None:
            return RouteResult(
                router=ROUTER_NAME, source=source, dest=dest, hamming=h,
                status=RouteStatus.STUCK, path=path,
                detail=f"{topo.format_node(current)}: no unvisited "
                       "fault-free neighbor (cannot backtrack)",
            )
        visited.add(nxt)
        volume += len(visited)
        current = nxt
        path.append(current)

    return RouteResult(
        router=ROUTER_NAME, source=source, dest=dest, hamming=h,
        status=RouteStatus.DELIVERED, path=path,
        metrics={"volume_words": float(volume)},
    )
