"""Safe-node-based routing: Lee–Hayes [7] and Chiu–Wu [4] style.

Both schemes precompute a boolean *safe* attribute per node (limited
global information, like safety levels but coarser) and steer messages
through the safe subgraph:

* if the current node is unsafe, first escape to a safe neighbor;
* while more than one hop remains, move to a safe preferred neighbor,
  falling back to a safe spare neighbor (a +2 detour) when none exists;
* the final hop may enter any nonfaulty destination.

Lee–Hayes routes over Definition-2 safe nodes (bound ``H + 2`` when the
cube is not fully unsafe); the Chiu–Wu strategy enlarges applicability by
using the Wu–Fernandez Definition-3 safe set (bound ``H + 4``).

**Fidelity note (documented substitution, see DESIGN.md):** we implement
the published *behavioral contract* of these schemes — greedy traversal of
the respective safe set with the stated entry/exit hops — rather than
transcribing the original papers' full pseudo-code.  What the comparison
experiments rely on is exactly what Theorem 4 predicts: both routers are
inapplicable whenever their safe set is empty (in particular, in every
disconnected cube), while safety-level routing keeps working.
"""

from __future__ import annotations

from typing import Callable, Optional

from ...core.fault_models import RngLike
from ...core.faults import FaultSet
from ...core.hypercube import Hypercube
from ...safety.safe_nodes import SafeNodeResult, lee_hayes_safe, wu_fernandez_safe
from ..result import RouteResult, RouteStatus

__all__ = ["route_lee_hayes", "route_chiu_wu_style", "route_via_safe_set"]


def route_via_safe_set(
    topo: Hypercube,
    faults: FaultSet,
    safe: SafeNodeResult,
    source: int,
    dest: int,
    router_name: str,
    hop_limit: Optional[int] = None,
) -> RouteResult:
    """Greedy routing constrained to a precomputed safe set.

    Deterministic (lowest-dimension tie-breaks).  ``hop_limit`` defaults to
    ``4n + 16``; the visited-dimension discipline makes long walks rare, so
    the limit is a guard, not a tuning knob.
    """
    topo.validate_node(source)
    topo.validate_node(dest)
    if faults.is_node_faulty(source):
        raise ValueError(f"source {topo.format_node(source)} is faulty")
    if faults.is_node_faulty(dest):
        raise ValueError(f"destination {topo.format_node(dest)} is faulty")
    h = topo.distance(source, dest)
    limit = 4 * topo.dimension + 16 if hop_limit is None else hop_limit

    if source == dest:
        return RouteResult(router=router_name, source=source, dest=dest,
                           hamming=0, status=RouteStatus.DELIVERED,
                           path=[source])

    path = [source]
    current = source
    prev_dim: Optional[int] = None

    # Entry step: an unsafe source must reach the safe subgraph first
    # (prefer a preferred-dimension safe neighbor — that hop is free).
    if not safe.is_safe(current) and topo.distance(current, dest) > 1:
        preferred_dims = topo.differing_dimensions(current, dest)
        spare_dims = [d for d in range(topo.dimension)
                      if d not in preferred_dims]
        entry = None
        for dim in preferred_dims + spare_dims:
            cand = topo.neighbor_along(current, dim)
            if safe.is_safe(cand):
                entry = dim
                break
        if entry is None:
            return RouteResult(
                router=router_name, source=source, dest=dest, hamming=h,
                status=RouteStatus.ABORTED_AT_SOURCE,
                detail="source is unsafe and has no safe neighbor "
                       "(scheme inapplicable)",
            )
        current = topo.neighbor_along(current, entry)
        path.append(current)
        prev_dim = entry

    while current != dest:
        if len(path) - 1 >= limit:
            return RouteResult(
                router=router_name, source=source, dest=dest, hamming=h,
                status=RouteStatus.HOP_LIMIT, path=path,
                detail=f"hop budget {limit} exhausted",
            )
        remaining = topo.distance(current, dest)
        preferred_dims = topo.differing_dimensions(current, dest)
        if remaining == 1:
            nxt = topo.neighbor_along(current, preferred_dims[0])
            if faults.is_node_faulty(nxt):  # pragma: no cover - dest checked
                return RouteResult(
                    router=router_name, source=source, dest=dest, hamming=h,
                    status=RouteStatus.STUCK, path=path,
                    detail="destination neighbor faulty",
                )
            current = nxt
            path.append(current)
            break
        step = None
        for dim in preferred_dims:
            cand = topo.neighbor_along(current, dim)
            if safe.is_safe(cand):
                step = dim
                break
        if step is None:
            # Detour: a safe spare neighbor, never bouncing straight back.
            for dim in range(topo.dimension):
                if dim in preferred_dims or dim == prev_dim:
                    continue
                cand = topo.neighbor_along(current, dim)
                if safe.is_safe(cand):
                    step = dim
                    break
        if step is None:
            return RouteResult(
                router=router_name, source=source, dest=dest, hamming=h,
                status=RouteStatus.STUCK, path=path,
                detail=f"{topo.format_node(current)}: no safe neighbor to "
                       "advance through",
            )
        current = topo.neighbor_along(current, step)
        path.append(current)
        prev_dim = step

    return RouteResult(
        router=router_name, source=source, dest=dest, hamming=h,
        status=RouteStatus.DELIVERED, path=path,
    )


def route_lee_hayes(
    topo: Hypercube,
    faults: FaultSet,
    source: int,
    dest: int,
    rng: RngLike = None,
    hop_limit: Optional[int] = None,
    precomputed: Optional[SafeNodeResult] = None,
) -> RouteResult:
    """Lee–Hayes-style routing over the Definition-2 safe set."""
    safe = precomputed if precomputed is not None else lee_hayes_safe(topo, faults)
    return route_via_safe_set(topo, faults, safe, source, dest,
                              router_name="lee-hayes", hop_limit=hop_limit)


def route_chiu_wu_style(
    topo: Hypercube,
    faults: FaultSet,
    source: int,
    dest: int,
    rng: RngLike = None,
    hop_limit: Optional[int] = None,
    precomputed: Optional[SafeNodeResult] = None,
) -> RouteResult:
    """Chiu–Wu-style routing over the Definition-3 (Wu–Fernandez) safe set."""
    safe = precomputed if precomputed is not None else wu_fernandez_safe(topo, faults)
    return route_via_safe_set(topo, faults, safe, source, dest,
                              router_name="chiu-wu-style", hop_limit=hop_limit)
