"""Chen–Shin depth-first-search router with backtracking (paper ref [3]).

The message carries the full history of visited nodes (the cost the paper
criticizes: "a history of visited nodes has to be kept as part of the
message").  At each node it tries unvisited fault-free preferred neighbors
first, then unvisited spare neighbors, and backtracks along the tree edge
when everything forward is blocked.

Because DFS explores the whole connected component in the worst case, this
router *always* delivers when source and destination are connected — its
weakness is path length and message size, which the experiments measure.
The traversed ``path`` includes backtrack hops: every link walked costs a
message transmission.
"""

from __future__ import annotations

from typing import Optional

from ...core.fault_models import RngLike
from ...core.faults import FaultSet
from ...core.hypercube import Hypercube
from ..result import RouteResult, RouteStatus

__all__ = ["route_dfs"]

ROUTER_NAME = "dfs-backtrack"


def route_dfs(
    topo: Hypercube,
    faults: FaultSet,
    source: int,
    dest: int,
    rng: RngLike = None,  # accepted for interface uniformity; DFS is deterministic
    hop_limit: Optional[int] = None,
) -> RouteResult:
    """Depth-first routing with backtracking.

    Preferred dimensions are tried in ascending order, then spare
    dimensions ascending — a fixed order keeps runs reproducible.
    ``hop_limit`` defaults to unlimited (DFS terminates on its own).
    """
    topo.validate_node(source)
    topo.validate_node(dest)
    if faults.is_node_faulty(source):
        raise ValueError(f"source {topo.format_node(source)} is faulty")
    if faults.is_node_faulty(dest):
        raise ValueError(f"destination {topo.format_node(dest)} is faulty")
    h = topo.distance(source, dest)

    visited = {source}
    stack = [source]       # current DFS chain (tree path from source)
    walk = [source]        # every link traversal, including backtracks
    max_size = 1           # peak carried-history length, for message-size stats
    volume = 0             # total node-ids carried across all transmissions

    while stack:
        current = stack[-1]
        if current == dest:
            return RouteResult(
                router=ROUTER_NAME, source=source, dest=dest, hamming=h,
                status=RouteStatus.DELIVERED, path=walk,
                detail=f"history peak {max_size} nodes",
                metrics={"volume_words": float(volume),
                         "history_peak": float(max_size)},
            )
        if hop_limit is not None and len(walk) - 1 >= hop_limit:
            return RouteResult(
                router=ROUTER_NAME, source=source, dest=dest, hamming=h,
                status=RouteStatus.HOP_LIMIT, path=walk,
                detail=f"hop budget {hop_limit} exhausted",
            )
        # Preferred (distance-reducing) dimensions first, then spares.
        preferred = topo.differing_dimensions(current, dest)
        spares = [d for d in range(topo.dimension) if d not in preferred]
        nxt = None
        for dim in preferred + spares:
            cand = topo.neighbor_along(current, dim)
            if cand in visited or faults.is_node_faulty(cand) \
                    or faults.is_link_faulty(current, cand):
                continue
            nxt = cand
            break
        if nxt is None:
            stack.pop()          # dead end: backtrack one tree edge
            if stack:
                walk.append(stack[-1])
                volume += len(visited)  # the history rides every hop
            continue
        visited.add(nxt)
        stack.append(nxt)
        walk.append(nxt)
        volume += len(visited)
        max_size = max(max_size, len(stack))

    return RouteResult(
        router=ROUTER_NAME, source=source, dest=dest, hamming=h,
        status=RouteStatus.STUCK, path=walk,
        detail="component exhausted: destination unreachable",
    )
