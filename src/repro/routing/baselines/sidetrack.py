"""Gordon–Stout sidetracking router (paper ref [5]).

Purely local information: each node knows only which of its own neighbors
are faulty.  At every step the message moves to a fault-free *preferred*
neighbor if one exists; otherwise it is *sidetracked* to a randomly chosen
fault-free neighbor (a spare hop that must be undone later).  The paper
cites this as the archetype of heuristic local routing: paths are
unpredictable and livelock is possible, hence the hop budget.
"""

from __future__ import annotations

from typing import Optional

from ...core.fault_models import RngLike, as_rng
from ...core.faults import FaultSet
from ...core.hypercube import Hypercube
from .. import navigation as nav
from ..result import RouteResult, RouteStatus

__all__ = ["route_sidetrack", "default_hop_limit"]

ROUTER_NAME = "sidetrack"


def default_hop_limit(topo: Hypercube) -> int:
    """Generous budget: 4 cube-diameters plus slack.

    Sidetracking has no termination proof; experiments need a cutoff that
    is clearly not the binding constraint for routes that do succeed.
    """
    return 4 * topo.dimension + 16


def route_sidetrack(
    topo: Hypercube,
    faults: FaultSet,
    source: int,
    dest: int,
    rng: RngLike = None,
    hop_limit: Optional[int] = None,
) -> RouteResult:
    """Route with random sidetracking.  Seeded by ``rng``."""
    topo.validate_node(source)
    topo.validate_node(dest)
    if faults.is_node_faulty(source):
        raise ValueError(f"source {topo.format_node(source)} is faulty")
    if faults.is_node_faulty(dest):
        raise ValueError(f"destination {topo.format_node(dest)} is faulty")
    gen = as_rng(rng)
    n = topo.dimension
    h = topo.distance(source, dest)
    limit = default_hop_limit(topo) if hop_limit is None else hop_limit

    current = source
    vector = nav.initial_vector(source, dest)
    path = [source]
    while not nav.is_complete(vector):
        if len(path) - 1 >= limit:
            return RouteResult(
                router=ROUTER_NAME, source=source, dest=dest, hamming=h,
                status=RouteStatus.HOP_LIMIT, path=path,
                detail=f"hop budget {limit} exhausted",
            )
        alive_pref = [
            dim for dim in nav.preferred_dims(vector, n)
            if not faults.is_node_faulty(topo.neighbor_along(current, dim))
        ]
        if alive_pref:
            # Random choice among optimal-progress neighbors (the scheme
            # has no information to prefer one over another).
            dim = alive_pref[int(gen.integers(len(alive_pref)))]
        else:
            alive_spare = [
                d for d in nav.spare_dims(vector, n)
                if not faults.is_node_faulty(topo.neighbor_along(current, d))
            ]
            if not alive_spare:
                return RouteResult(
                    router=ROUTER_NAME, source=source, dest=dest, hamming=h,
                    status=RouteStatus.STUCK, path=path,
                    detail=f"{topo.format_node(current)} has no fault-free "
                           "neighbor",
                )
            dim = alive_spare[int(gen.integers(len(alive_spare)))]
        vector = nav.cross(vector, dim)
        current = topo.neighbor_along(current, dim)
        path.append(current)

    return RouteResult(
        router=ROUTER_NAME, source=source, dest=dest, hamming=h,
        status=RouteStatus.DELIVERED, path=path,
    )
