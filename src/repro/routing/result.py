"""Route outcomes shared by every router in the suite.

A router returns a :class:`RouteResult`: what happened (delivered, aborted
at the source with a *detected* infeasibility, or failed en route), the
node path actually traversed (including any backtracking for DFS-style
baselines), and enough metadata for the experiment tables (Hamming
distance, detour, which source condition fired, message volume).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from ..results import base_record

__all__ = ["RouteStatus", "SourceCondition", "RouteResult"]


class RouteStatus(enum.Enum):
    """Terminal state of a unicast attempt."""

    #: Message reached the destination.
    DELIVERED = "delivered"
    #: The source determined (from safety information) that no route can be
    #: guaranteed and did not inject the message.  This is the paper's
    #: graceful failure mode — crucial in disconnected cubes.
    ABORTED_AT_SOURCE = "aborted-at-source"
    #: The message got stuck mid-route (no usable next hop).  Safety-level
    #: routing never does this when a source condition held; heuristic
    #: baselines can.
    STUCK = "stuck"
    #: Hop budget exhausted (livelock guard for heuristic baselines).
    HOP_LIMIT = "hop-limit"


class SourceCondition(enum.Enum):
    """Which feasibility test admitted the unicast (paper Section 3.2)."""

    #: ``S(s) >= H(s, d)`` — the source's own level suffices.
    C1 = "C1"
    #: Some preferred neighbor has level ``>= H - 1``.
    C2 = "C2"
    #: Some spare neighbor has level ``>= H + 1`` (suboptimal branch).
    C3 = "C3"
    #: Routers that do not use the safety-level feasibility tests.
    NONE = "none"


@dataclass(frozen=True)
class RouteResult:
    """Outcome of one unicast attempt.

    ``path`` is the full node sequence traversed, starting at the source;
    for delivered routes it ends at the destination.  ``hops`` therefore
    counts *traversed links*, which for backtracking routers exceeds the
    final route length.
    """

    router: str
    source: int
    dest: int
    hamming: int
    status: RouteStatus
    path: List[int] = field(default_factory=list)
    condition: SourceCondition = SourceCondition.NONE
    #: Router-specific notes (e.g. failure explanations).
    detail: Optional[str] = None
    #: Router-specific numeric measurements (e.g. message volume in
    #: carried words for history-bearing schemes).  Never consulted by
    #: routing logic — experiment instrumentation only.
    metrics: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.path and self.path[0] != self.source:
            raise ValueError("path must start at the source")
        if self.status is RouteStatus.DELIVERED:
            if not self.path or self.path[-1] != self.dest:
                raise ValueError("delivered route must end at the destination")

    # -- derived metrics ----------------------------------------------------

    @property
    def delivered(self) -> bool:
        return self.status is RouteStatus.DELIVERED

    @property
    def hops(self) -> int:
        """Links traversed (0 for an aborted unicast)."""
        return max(0, len(self.path) - 1)

    @property
    def detour(self) -> Optional[int]:
        """``hops - H(s, d)``; None unless delivered."""
        if not self.delivered:
            return None
        return self.hops - self.hamming

    @property
    def optimal(self) -> bool:
        """Delivered along a Hamming-distance path."""
        return self.delivered and self.hops == self.hamming

    @property
    def suboptimal(self) -> bool:
        """Delivered with the paper's +2 detour exactly."""
        return self.delivered and self.hops == self.hamming + 2

    # -- the shared result protocol (repro.results.ResultLike) --------------

    def to_dict(self) -> Dict[str, Any]:
        """JSON-able record; ``status``/``condition`` are value strings."""
        return base_record(
            self,
            router=self.router,
            source=self.source,
            dest=self.dest,
            hamming=self.hamming,
            condition=self.condition,
            hops=self.hops,
            detour=self.detour,
            optimal=self.optimal,
            path=list(self.path),
            detail=self.detail,
            metrics=dict(self.metrics),
        )

    def summary(self) -> str:
        """One-line outcome (the protocol spelling of :meth:`describe`)."""
        return self.describe()

    def describe(self, format_node=None) -> str:
        """One-line human-readable summary (examples use this)."""
        fmt = format_node or str
        head = (
            f"{self.router}: {fmt(self.source)} -> {fmt(self.dest)} "
            f"[H={self.hamming}] {self.status.value}"
        )
        if self.delivered:
            kind = (
                "optimal" if self.optimal
                else f"detour +{self.detour}"
            )
            route = " -> ".join(fmt(v) for v in self.path)
            cond = (
                f", via {self.condition.value}"
                if self.condition is not SourceCondition.NONE
                else ""
            )
            return f"{head} ({kind}{cond}): {route}"
        if self.detail:
            return f"{head}: {self.detail}"
        return head
