"""Unicasting in generalized hypercubes (Section 4.2).

"Routing in GH_n is exactly the same as in a regular hypercube, because all
the nodes are directly connected along the same dimension": a preferred hop
jumps straight to the destination's coordinate of some differing dimension.
Feasibility mirrors C1/C2/C3 with distances counted in differing
coordinates, and eligibility of a hop is judged by the *target* neighbor's
own level (which dominates Definition 4's per-dimension minimum, so the
Theorem 2' guarantee carries over).

The paper's Fig. 5 walk-through also sketches *lateral* moves — stepping to
a third coordinate value inside a preferred dimension ("ring routing along
this dimension"), which keeps the coordinate distance unchanged.  The
primary algorithm never needs them; ``allow_lateral=True`` enables them as
a best-effort fallback when no target neighbor is eligible, reproducing the
paper's alternative route shape.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..core.fault_models import RngLike, as_rng
from ..safety.generalized import GhSafetyLevels
from .result import RouteResult, RouteStatus, SourceCondition

__all__ = ["route_gh_unicast"]

ROUTER_NAME = "safety-level-gh"


def _best(cands: List[Tuple[int, int]]) -> Optional[Tuple[int, int]]:
    """Max-level (node, level) pair, smallest node id on ties."""
    if not cands:
        return None
    best_level = max(level for _node, level in cands)
    return min((node, level) for node, level in cands if level == best_level)


def route_gh_unicast(
    ghsl: GhSafetyLevels,
    source: int,
    dest: int,
    allow_lateral: bool = False,
    rng: RngLike = None,
    hop_limit: Optional[int] = None,
) -> RouteResult:
    """Safety-level unicast in a generalized hypercube."""
    gh, faults = ghsl.gh, ghsl.faults
    gh.validate_node(source)
    gh.validate_node(dest)
    if faults.is_node_faulty(source):
        raise ValueError(f"source {gh.format_node(source)} is faulty")
    if faults.is_node_faulty(dest):
        raise ValueError(f"destination {gh.format_node(dest)} is faulty")
    h = gh.distance(source, dest)
    limit = 4 * gh.dimension + 16 if hop_limit is None else hop_limit

    if source == dest:
        return RouteResult(router=ROUTER_NAME, source=source, dest=dest,
                           hamming=0, status=RouteStatus.DELIVERED,
                           path=[source], condition=SourceCondition.C1)

    # -- source feasibility ---------------------------------------------------
    def preferred_targets(node: int) -> List[Tuple[int, int]]:
        return [
            (gh.step_toward(node, dest, dim), ghsl.level(gh.step_toward(node, dest, dim)))
            for dim in gh.differing_dimensions(node, dest)
        ]

    pref = preferred_targets(source)
    best_pref = _best(pref)
    assert best_pref is not None

    condition = SourceCondition.NONE
    first_hop = None
    if ghsl.level(source) >= h:
        condition, first_hop = SourceCondition.C1, best_pref[0]
    elif best_pref[1] >= h - 1:
        condition, first_hop = SourceCondition.C2, best_pref[0]
    else:
        spare_cands = []
        for dim in gh.agreeing_dimensions(source, dest):
            for v in gh.neighbors_along(source, dim):
                spare_cands.append((v, ghsl.level(v)))
        best_spare = _best(spare_cands)
        if best_spare is not None and best_spare[1] >= h + 1:
            condition, first_hop = SourceCondition.C3, best_spare[0]

    if condition is SourceCondition.NONE:
        return RouteResult(
            router=ROUTER_NAME, source=source, dest=dest, hamming=h,
            status=RouteStatus.ABORTED_AT_SOURCE,
            detail="C1, C2 and C3 all fail at the source",
        )

    assert first_hop is not None
    current = first_hop
    path = [source, current]

    # -- intermediate rule ------------------------------------------------------
    while current != dest:
        if len(path) - 1 >= limit:
            return RouteResult(
                router=ROUTER_NAME, source=source, dest=dest, hamming=h,
                status=RouteStatus.HOP_LIMIT, path=path, condition=condition,
                detail=f"hop budget {limit} exhausted",
            )
        cands = preferred_targets(current)
        choice = _best(cands)
        assert choice is not None
        nxt, level = choice
        if level == 0 and nxt != dest:
            if allow_lateral:
                lateral = []
                for dim in gh.differing_dimensions(current, dest):
                    target = gh.step_toward(current, dest, dim)
                    for v in gh.neighbors_along(current, dim):
                        if v != target and not faults.is_node_faulty(v):
                            lateral.append((v, ghsl.level(v)))
                pick = _best(lateral)
                if pick is not None and pick[1] > 0:
                    current = pick[0]
                    path.append(current)
                    continue
            return RouteResult(
                router=ROUTER_NAME, source=source, dest=dest, hamming=h,
                status=RouteStatus.STUCK, path=path, condition=condition,
                detail=f"all preferred targets of "
                       f"{gh.format_node(current)} are faulty",
            )
        current = nxt
        path.append(current)

    return RouteResult(
        router=ROUTER_NAME, source=source, dest=dest, hamming=h,
        status=RouteStatus.DELIVERED, path=path, condition=condition,
    )
