"""Routing layer: the paper's safety-level unicast plus all baselines.

Entry points:

* :func:`route_unicast` — the Section 3.2 algorithm as a fast deterministic
  walk over a :class:`~repro.safety.SafetyLevels` assignment.
* :func:`route_unicast_distributed` — the same protocol executed by node
  processes on the simulator.
* :func:`check_feasibility` — the source-side C1/C2/C3 tests alone.
* :func:`route_unicast_batch` / :func:`check_feasibility_batch` — the same
  algorithm vectorized over whole (trials × pairs) route matrices,
  bit-identical to the scalar walk (see :mod:`repro.routing.batch`).
* :func:`route_unicast_resilient` — the distributed protocol hardened
  with hop ACKs, retries, and reconvergence for mid-flight faults (see
  :mod:`repro.routing.resilient` and the chaos harness).
* :func:`route_unicast_with_links` — the Section 4.1 variant over EGS.
* :func:`route_gh_unicast` — the Section 4.2 variant for generalized cubes.
* :mod:`repro.routing.baselines` — oracle, sidetracking, DFS, progressive,
  and safe-node routers for the comparison experiments.
"""

from . import navigation
from .adaptive import AdaptiveRouteOutcome, route_unicast_adaptive
from .batch import (
    BatchFeasibility,
    BatchRouteResult,
    check_feasibility_batch,
    route_unicast_batch,
)
from .baselines import (
    route_chiu_wu_style,
    route_dfs,
    route_lee_hayes,
    route_oracle,
    route_progressive,
    route_sidetrack,
)
from .distributed import UnicastProcess, route_unicast_distributed
from .generalized import route_gh_unicast
from .gh_distributed import route_gh_unicast_distributed
from .link_fault_distributed import route_unicast_with_links_distributed
from .link_fault_routing import route_unicast_with_links
from .multicast import (
    MulticastResult,
    multicast_greedy_tree,
    multicast_separate,
)
from .resilient import (
    AttemptRecord,
    ResilientResult,
    ResilientUnicastProcess,
    route_unicast_resilient,
)
from .result import RouteResult, RouteStatus, SourceCondition
from .safety_unicast import Feasibility, check_feasibility, route_unicast
from .validation import assert_compliant, audit_route, audit_theorem3

__all__ = [
    "navigation",
    "AdaptiveRouteOutcome",
    "route_unicast_adaptive",
    "route_chiu_wu_style",
    "route_dfs",
    "route_lee_hayes",
    "route_oracle",
    "route_progressive",
    "route_sidetrack",
    "UnicastProcess",
    "route_unicast_distributed",
    "AttemptRecord",
    "ResilientResult",
    "ResilientUnicastProcess",
    "route_unicast_resilient",
    "route_gh_unicast",
    "route_gh_unicast_distributed",
    "route_unicast_with_links",
    "route_unicast_with_links_distributed",
    "MulticastResult",
    "multicast_greedy_tree",
    "multicast_separate",
    "RouteResult",
    "RouteStatus",
    "SourceCondition",
    "Feasibility",
    "check_feasibility",
    "route_unicast",
    "BatchFeasibility",
    "BatchRouteResult",
    "check_feasibility_batch",
    "route_unicast_batch",
    "assert_compliant",
    "audit_route",
    "audit_theorem3",
]
