"""Route auditing: machine-checkable compliance with the paper's contracts.

The test suite and the experiment harness both need to judge whether a
:class:`~repro.routing.result.RouteResult` honors its claims.  This module
centralizes those judgments:

* :func:`audit_route` — structural audit of any result against the fault
  map: path continuity, fault avoidance, endpoint/status consistency.
* :func:`audit_theorem3` — the safety-level contract on top: C1/C2 routes
  must have length exactly ``H``, C3 routes exactly ``H + 2``, aborted
  results must carry no path, and a result produced while a source
  condition held must not be stuck.

Both return a list of violation strings (empty = compliant), so failures
are self-describing in test output and experiment logs.
"""

from __future__ import annotations

from typing import List

from ..core import partition
from ..core.faults import FaultSet
from ..core.topology import Topology
from .result import RouteResult, RouteStatus, SourceCondition

__all__ = ["audit_route", "audit_theorem3", "assert_compliant"]


def audit_route(
    topo: Topology, faults: FaultSet, result: RouteResult
) -> List[str]:
    """Structural violations of ``result`` against the fault map."""
    issues: List[str] = []
    path = result.path

    if result.status is RouteStatus.DELIVERED:
        if not path:
            issues.append("delivered with an empty path")
            return issues
        if path[0] != result.source:
            issues.append("path does not start at the source")
        if path[-1] != result.dest:
            issues.append("path does not end at the destination")
    if result.status is RouteStatus.ABORTED_AT_SOURCE and len(path) > 1:
        issues.append("aborted at source but the path shows hops")

    for u in path:
        try:
            topo.validate_node(u)
        except ValueError:
            issues.append(f"path contains invalid node {u}")
            return issues
        if faults.is_node_faulty(u):
            issues.append(f"path visits faulty node {topo.format_node(u)}")
    for u, v in zip(path, path[1:]):
        if v not in topo.neighbors(u):
            issues.append(
                f"teleport {topo.format_node(u)} -> {topo.format_node(v)}"
            )
        elif faults.is_link_faulty(u, v):
            issues.append(
                f"path crosses faulty link {topo.format_node(u)}-"
                f"{topo.format_node(v)}"
            )

    if result.hamming != topo.distance(result.source, result.dest):
        issues.append("recorded Hamming distance is wrong")
    return issues


def audit_theorem3(
    topo: Topology, faults: FaultSet, result: RouteResult
) -> List[str]:
    """Theorem-3 contract violations (includes the structural audit)."""
    issues = audit_route(topo, faults, result)
    cond = result.condition
    if result.status is RouteStatus.DELIVERED:
        if cond in (SourceCondition.C1, SourceCondition.C2) \
                and result.hops != result.hamming:
            issues.append(
                f"{cond.value} route has length {result.hops}, "
                f"expected H = {result.hamming}"
            )
        if cond is SourceCondition.C3 \
                and result.hops != result.hamming + 2:
            issues.append(
                f"C3 route has length {result.hops}, expected "
                f"H + 2 = {result.hamming + 2}"
            )
    elif cond is not SourceCondition.NONE \
            and result.status in (RouteStatus.STUCK, RouteStatus.HOP_LIMIT):
        issues.append(
            f"a {cond.value}-admitted unicast must not end "
            f"{result.status.value}"
        )
    if result.status is RouteStatus.ABORTED_AT_SOURCE:
        # An abort is *conservative* if the oracle disagrees; that is
        # allowed beyond n-1 faults, but an abort on a pair the source's
        # own condition admitted is contradictory.
        if cond is not SourceCondition.NONE:
            issues.append("aborted although a source condition is recorded")
    return issues


def assert_compliant(
    topo: Topology, faults: FaultSet, result: RouteResult
) -> None:
    """Raise ``AssertionError`` listing every Theorem-3 violation."""
    issues = audit_theorem3(topo, faults, result)
    if issues:
        raise AssertionError(
            "route violates its contract:\n  " + "\n  ".join(issues)
        )
