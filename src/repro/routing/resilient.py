"""Resilient unicast delivery: the Section 3.2 protocol hardened for
mid-flight faults.

:mod:`repro.routing.distributed` runs the paper's algorithm verbatim —
correct under the static fault model, but a message that meets a fault
injected *after* GS stabilized is silently lost.  This module wraps the
same source/intermediate rules in a delivery protocol that turns every
loss into either a successful re-route or a *detected* failure:

* **hop-level ACKs** — every data transmission is acknowledged by the
  receiving hop; a missing ACK makes the forwarder *suspect* that
  neighbor (the paper's local fault detection, extended to links) and
  NACK back to the source along the traversed path;
* **source-side timeout + bounded exponential backoff** — the source
  backstops lost NACKs with an attempt timer and retries after
  ``backoff_base * 2**retry`` ticks (capped);
* **re-route after reconvergence** — before each retry the source
  refreshes safety levels from the live fault picture (warm-started GS,
  see :class:`repro.safety.dynamic.IncrementalLevelView`), unless a
  chaos staleness window forbids it (then the re-route runs on stale
  levels and is counted);
* **graceful degradation** — optimal (C1/C2) → suboptimal (C3) →
  DFS-backtrack source-routing → *detected* failure.  The run never
  ends in silence: the destination either accepted the payload exactly
  once, or the source knows delivery failed.

The protocol degenerates exactly to the paper's algorithm when all
faults predate ``start()``: same feasibility draws, same walk, same
path (a property test asserts this against
:func:`~repro.routing.distributed.route_unicast_distributed`).

Intermediate nodes keep the paper's local-information discipline: own
level, neighbor levels, the carried navigation vector — plus a *local*
suspicion set fed only by their own failure detections.  The carried
path is consulted for exactly two resilience duties the static protocol
lacks: routing NACK/DLV notifications backward, and never re-entering a
node already visited by this attempt (which preserves the Theorem 3
``H + 2`` bound per attempt even under suspicion-filtered choices).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

from ..chaos import ChaosController, ChaosPlan, check_chaos_invariants
from ..core.fault_models import RngLike, as_rng
from ..obs.instruments import record_chaos_run
from ..results import base_record
from ..safety.dynamic import IncrementalLevelView
from ..safety.levels import SafetyLevels
from ..simcore.errors import DeliveryTimeout
from ..simcore.message import Message
from ..simcore.network import Network
from ..simcore.node import NodeProcess
from . import navigation as nav
from .baselines.dfs_backtrack import route_dfs
from .result import RouteResult, RouteStatus, SourceCondition

__all__ = [
    "ResilientUnicastProcess",
    "AttemptRecord",
    "ResilientResult",
    "route_unicast_resilient",
    "KIND_DATA",
    "KIND_DFS",
    "KIND_ACK",
    "KIND_NACK",
    "KIND_DLV",
]

ROUTER_NAME = "safety-level-resilient"

KIND_DATA = "runi-data"   #: level-routed payload hop
KIND_DFS = "runi-dfs"     #: source-routed payload hop (fallback stage)
KIND_ACK = "runi-ack"     #: hop-level acknowledgement
KIND_NACK = "runi-nack"   #: failure notice routed back to the source
KIND_DLV = "runi-dlv"     #: delivery notice routed back to the source

#: Ladder stages, in descent order.
STAGE_OPTIMAL = "optimal"
STAGE_SUBOPTIMAL = "suboptimal"
STAGE_DFS = "dfs"


# ---------------------------------------------------------------------------
# result objects
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class AttemptRecord:
    """One delivery attempt, as verified post-run from receiver logs.

    ``path`` is the longest receipt-confirmed prefix the attempt's data
    message traversed (ground truth from process logs, not the source's
    belief); ``hops`` is its link count.
    """

    index: int
    stage: str               # optimal / suboptimal / dfs
    condition: SourceCondition
    outcome: str             # delivered / nack / timeout / superseded
    path: List[int]
    hops: int
    reason: Optional[str] = None


@dataclass(frozen=True)
class ResilientResult:
    """Outcome of one resilient unicast (satisfies ``ResultLike``).

    ``status`` is ground truth measured at the destination after the
    run — ``"delivered"`` iff the destination accepted the payload
    (exactly once), ``"failed-detected"`` otherwise.  A delivery whose
    confirmation was lost still counts as delivered; the protocol never
    reports a *silent* outcome either way.
    """

    source: int
    dest: int
    n: int
    hamming: int
    status: str                        # delivered / failed-detected
    stage: str                         # stage that ended the run, or "none"
    attempts: List[AttemptRecord] = field(default_factory=list)
    deliveries: int = 0
    duplicates: int = 0
    node_kills: int = 0
    link_kills: int = 0
    tampered: int = 0
    stale_reroutes: int = 0
    latency: Optional[int] = None
    gs_rounds: int = 0
    gs_messages: int = 0
    detail: Optional[str] = None
    router: str = ROUTER_NAME

    @property
    def delivered(self) -> bool:
        return self.status == "delivered"

    @property
    def retries(self) -> int:
        return max(0, len(self.attempts) - 1)

    @property
    def hops(self) -> int:
        """Data-message links traversed, summed over all attempts."""
        return sum(a.hops for a in self.attempts)

    def chaos_record(self) -> Dict[str, Any]:
        """The flat payload of one ``chaos_run`` telemetry event."""
        record: Dict[str, Any] = {
            "n": self.n,
            "hamming": self.hamming,
            "status": self.status,
            "stage": self.stage,
            "attempts": len(self.attempts),
            "retries": self.retries,
            "node_kills": self.node_kills,
            "link_kills": self.link_kills,
            "tampered": self.tampered,
            "duplicates": self.duplicates,
            "stale_reroutes": self.stale_reroutes,
            "hops": self.hops,
        }
        if self.latency is not None:
            record["latency"] = self.latency
        return record

    def to_route_result(self) -> RouteResult:
        """Project onto the static routers' result type for comparisons.

        Delivered runs map to ``DELIVERED`` with the accepted path;
        zero-attempt failures map to ``ABORTED_AT_SOURCE`` (the source
        rule detected infeasibility and never injected the message);
        other failures map to ``STUCK`` with the last verified path.
        """
        if self.delivered:
            last = next(a for a in self.attempts if a.outcome == "delivered")
            return RouteResult(
                router=self.router, source=self.source, dest=self.dest,
                hamming=self.hamming, status=RouteStatus.DELIVERED,
                path=list(last.path), condition=last.condition,
            )
        if not self.attempts:
            return RouteResult(
                router=self.router, source=self.source, dest=self.dest,
                hamming=self.hamming, status=RouteStatus.ABORTED_AT_SOURCE,
                detail=self.detail or "C1, C2 and C3 all fail at the source",
            )
        last = self.attempts[-1]
        return RouteResult(
            router=self.router, source=self.source, dest=self.dest,
            hamming=self.hamming, status=RouteStatus.STUCK,
            path=list(last.path), condition=last.condition,
            detail=self.detail or f"attempt {last.index} {last.outcome}",
        )

    def to_dict(self) -> Dict[str, Any]:
        return base_record(
            self,
            router=self.router,
            source=self.source,
            dest=self.dest,
            n=self.n,
            hamming=self.hamming,
            stage=self.stage,
            attempts=[
                {
                    "index": a.index, "stage": a.stage,
                    "condition": a.condition, "outcome": a.outcome,
                    "path": list(a.path), "hops": a.hops,
                    "reason": a.reason,
                }
                for a in self.attempts
            ],
            retries=self.retries,
            hops=self.hops,
            deliveries=self.deliveries,
            duplicates=self.duplicates,
            node_kills=self.node_kills,
            link_kills=self.link_kills,
            tampered=self.tampered,
            stale_reroutes=self.stale_reroutes,
            latency=self.latency,
            gs_rounds=self.gs_rounds,
            gs_messages=self.gs_messages,
            detail=self.detail,
        )

    def summary(self) -> str:
        head = (
            f"{self.router}: {self.source} -> {self.dest} "
            f"[H={self.hamming}] {self.status}"
        )
        tail = (
            f"{len(self.attempts)} attempt(s), stage {self.stage}, "
            f"{self.node_kills}+{self.link_kills} kills, "
            f"{self.tampered} tampered"
        )
        if self.latency is not None:
            tail += f", latency {self.latency}"
        return f"{head} ({tail})"


# ---------------------------------------------------------------------------
# the node process
# ---------------------------------------------------------------------------


class ResilientUnicastProcess(NodeProcess):
    """Level-based forwarding plus the hop-ACK delivery machinery.

    Every node runs the same code; the node the driver calls
    :meth:`begin_delivery` on additionally plays the source role
    (attempt ladder, retries, backoff).  Post-run, the driver reads
    ``data_log`` / ``accepted*`` / ``duplicates`` as measurement — the
    protocol itself never peeks across nodes.
    """

    def __init__(self, n: int, own_level: int,
                 level_of_neighbor: Dict[int, int],
                 tie_break: nav.TieBreak, rng) -> None:
        super().__init__()
        self.n = n
        self.own_level = own_level
        self.level_of_neighbor = level_of_neighbor
        self.tie_break = tie_break
        self._rng = rng
        #: Neighbors this node locally believes unreachable (dead node,
        #: dead link, or hop-ACK timeout).  Never shared between nodes.
        self.suspected: Set[int] = set()
        # hop-dedup keys (attempt, position) of primary data receipts
        self._seen: Set[Tuple[int, int]] = set()
        #: (attempt, path-so-far) for every primary data receipt.
        self.data_log: List[Tuple[int, Tuple[int, ...]]] = []
        # destination-role state
        self.accepted = False
        self.accepted_attempt: Optional[int] = None
        self.accepted_path: Optional[Tuple[int, ...]] = None
        self.accepted_time: Optional[int] = None
        self.duplicates = 0
        # in-flight transmissions awaiting a hop ACK:
        # (attempt, token) -> (next_hop, back_path)
        self._pending: Dict[Tuple[int, int], Tuple[int, Tuple[int, ...]]] = {}
        self.ack_timeout = 3
        # source-role state (populated by begin_delivery)
        self._is_source = False
        self.dest: Optional[int] = None
        self.stale_reroutes = 0

    # -- failure detection ----------------------------------------------------

    def on_neighbor_failure(self, neighbor: int) -> None:
        self.suspected.add(neighbor)

    def on_link_failure(self, neighbor: int) -> None:
        self.suspected.add(neighbor)

    # -- source role ----------------------------------------------------------

    def begin_delivery(
        self,
        dest: int,
        *,
        max_attempts: int,
        fallback_attempts: int,
        ack_timeout: int,
        hop_ticks: int,
        attempt_slack: int,
        backoff_base: int,
        backoff_cap: int,
        reconverge_cb: Optional[Callable[[], None]] = None,
        stale_cb: Optional[Callable[[], bool]] = None,
        dfs_cb: Optional[Callable[[], Optional[List[int]]]] = None,
    ) -> None:
        """Start delivering one payload to ``dest`` (source role)."""
        self._is_source = True
        self.dest = dest
        self.max_attempts = max_attempts
        self.fallback_left = fallback_attempts
        self.ack_timeout = ack_timeout
        self.hop_ticks = hop_ticks
        self.attempt_slack = attempt_slack
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.reconverge_cb = reconverge_cb
        self.stale_cb = stale_cb
        self.dfs_cb = dfs_cb
        self.attempt_no = 0
        self.normal_used = 0
        self.normal_exhausted = False
        self.retry_count = 0
        self.done = False
        self.failed = False
        self._closed: Set[int] = set()
        #: attempt -> (stage, condition) at launch time.
        self.attempt_meta: Dict[int, Tuple[str, SourceCondition]] = {}
        #: attempt -> (outcome, reason) as known at the source.
        self.outcomes: Dict[int, Tuple[str, Optional[str]]] = {}
        if dest == self.node_id:
            self.attempt_no = 1
            self.attempt_meta[1] = (STAGE_OPTIMAL, SourceCondition.C1)
            self._accept(1, (self.node_id,))
            return
        self._launch_next()

    def _feasibility(self) -> Tuple[SourceCondition, Optional[int]]:
        """The paper's C1/C2/C3 source tests over *usable* neighbors.

        With an empty suspicion set this consumes draws and returns
        results identical to
        :func:`repro.routing.safety_unicast.check_feasibility` — the
        degenerate-equivalence property depends on it.
        """
        vector = nav.initial_vector(self.node_id, self.dest)
        h = vector.bit_count()
        preferred = []
        for dim in nav.preferred_dims(vector, self.n):
            nb = self.node_id ^ (1 << dim)
            if nb in self.suspected:
                continue
            preferred.append((dim, self.level_of_neighbor[nb]))
        best = nav.pick_extreme(preferred, self.tie_break, self._rng)
        if best is not None and (self.own_level >= h or best[1] >= h - 1):
            condition = (SourceCondition.C1 if self.own_level >= h
                         else SourceCondition.C2)
            return condition, best[0]
        spare = []
        for dim in nav.spare_dims(vector, self.n):
            nb = self.node_id ^ (1 << dim)
            if nb in self.suspected:
                continue
            spare.append((dim, self.level_of_neighbor[nb]))
        best_spare = nav.pick_extreme(spare, self.tie_break, self._rng)
        if best_spare is not None and best_spare[1] >= h + 1:
            return SourceCondition.C3, best_spare[0]
        return SourceCondition.NONE, None

    def _launch_next(self) -> None:
        if self.done or self.failed:
            return
        if self.attempt_no > 0:
            # Re-route decision point: refresh levels unless a staleness
            # window pins us to the old assignment.
            if self.stale_cb is not None and self.stale_cb():
                self.stale_reroutes += 1
            elif self.reconverge_cb is not None:
                self.reconverge_cb()
        if not self.normal_exhausted:
            if self.normal_used >= self.max_attempts:
                self.normal_exhausted = True
            else:
                condition, dim = self._feasibility()
                if condition is not SourceCondition.NONE:
                    self._launch_level_attempt(condition, dim)
                    return
                # Source rule finds no guaranteed route: descend the
                # ladder for good (levels only get worse under failures).
                self.normal_exhausted = True
        if self.fallback_left > 0:
            self.fallback_left -= 1
            route = self.dfs_cb() if self.dfs_cb is not None else None
            if route is not None and len(route) > 1:
                self._launch_dfs_attempt(route)
                return
        self.failed = True
        self.trace("runi-failed", self.attempt_no)

    def _launch_level_attempt(self, condition: SourceCondition,
                              dim: int) -> None:
        self.attempt_no += 1
        self.normal_used += 1
        k = self.attempt_no
        stage = (STAGE_OPTIMAL
                 if condition in (SourceCondition.C1, SourceCondition.C2)
                 else STAGE_SUBOPTIMAL)
        self.attempt_meta[k] = (stage, condition)
        vector = nav.cross(nav.initial_vector(self.node_id, self.dest), dim)
        nxt = self.node_id ^ (1 << dim)
        path = (self.node_id, nxt)
        self._transmit(KIND_DATA, nxt, k, token=1,
                       payload=(k, vector, path), back=(self.node_id,))
        h = nav.initial_vector(self.node_id, self.dest).bit_count()
        budget = 2 * (h + 2) * self.hop_ticks + self.ack_timeout \
            + self.attempt_slack
        self.after(budget, lambda: self._attempt_timeout(k))

    def _launch_dfs_attempt(self, route: List[int]) -> None:
        self.attempt_no += 1
        k = self.attempt_no
        self.attempt_meta[k] = (STAGE_DFS, SourceCondition.NONE)
        route_t = tuple(route)
        self._transmit(KIND_DFS, route_t[1], k, token=1,
                       payload=(k, route_t, 1), back=(self.node_id,))
        budget = 2 * len(route_t) * self.hop_ticks + self.ack_timeout \
            + self.attempt_slack
        self.after(budget, lambda: self._attempt_timeout(k))

    def _attempt_failed(self, k: int, reason: Optional[str]) -> None:
        if self.done or self.failed or k in self._closed \
                or k != self.attempt_no:
            return
        self._closed.add(k)
        self.outcomes[k] = ("nack", reason)
        delay = min(self.backoff_base * (2 ** self.retry_count),
                    self.backoff_cap)
        self.retry_count += 1
        self.after(delay, self._launch_next)

    def _attempt_timeout(self, k: int) -> None:
        if self.done or self.failed or k in self._closed \
                or k != self.attempt_no:
            return
        self._closed.add(k)
        self.outcomes[k] = ("timeout", "attempt budget exhausted")
        # The budget already waited out the worst round-trip; retry now.
        self._launch_next()

    def _confirmed(self, k: int) -> None:
        if self.done:
            return
        self.done = True
        self.trace("runi-confirmed", k)

    # -- shared delivery machinery --------------------------------------------

    def _transmit(self, kind: str, nxt: int, k: int, token: int,
                  payload: Any, back: Tuple[int, ...]) -> None:
        units = len(payload[1]) if kind == KIND_DFS else 1
        self.send(nxt, kind, payload, payload_units=units)
        self._pending[(k, token)] = (nxt, back)
        self.after(self.ack_timeout, lambda: self._ack_deadline(k, token))

    def _ack_deadline(self, k: int, token: int) -> None:
        entry = self._pending.pop((k, token), None)
        if entry is None:
            return  # acknowledged in time
        nxt, back = entry
        self.suspected.add(nxt)
        self.trace("runi-suspect", nxt)
        self._route_back(KIND_NACK, k, back, len(back) - 1, "no-ack")

    def _route_back(self, kind: str, k: int, path: Tuple[int, ...],
                    idx: int, reason: Optional[str]) -> None:
        """Carry a NACK/DLV one step toward the source; ``path[idx]`` is
        this node.  Unacknowledged best-effort — the source's attempt
        timer backstops a lost notification."""
        if idx == 0:
            if kind == KIND_NACK:
                self._attempt_failed(k, reason)
            else:
                self._confirmed(k)
            return
        self.send(path[idx - 1], kind, (k, path, idx - 1, reason))

    def _accept(self, k: int, path: Tuple[int, ...]) -> None:
        """Destination role: accept once, suppress and count duplicates,
        confirm backward each time."""
        if self.accepted:
            self.duplicates += 1
            k = self.accepted_attempt  # confirm the accepted attempt
        else:
            self.accepted = True
            self.accepted_attempt = k
            self.accepted_path = path
            self.accepted_time = self.now
            self.trace("runi-accepted", path)
        self._route_back(KIND_DLV, k, path, len(path) - 1, None)

    # -- message handlers -----------------------------------------------------

    def on_message(self, msg: Message) -> None:
        if msg.kind == KIND_DATA:
            self._handle_data(msg)
        elif msg.kind == KIND_DFS:
            self._handle_dfs(msg)
        elif msg.kind == KIND_ACK:
            k, token = msg.payload
            self._pending.pop((k, token), None)
        elif msg.kind in (KIND_NACK, KIND_DLV):
            k, path, idx, reason = msg.payload
            self._route_back(msg.kind, k, path, idx, reason)
        else:  # pragma: no cover - protocol bug guard
            raise ValueError(f"unknown message kind {msg.kind!r}")

    def _handle_data(self, msg: Message) -> None:
        k, vector, path = msg.payload
        token = len(path) - 1
        self.send(msg.src, KIND_ACK, (k, token))
        if (k, token) in self._seen:
            # Duplicate of a hop already processed: re-ACKed above; only
            # the destination needs to account for it.
            if nav.is_complete(vector):
                self._accept(k, path)
            return
        self._seen.add((k, token))
        self.data_log.append((k, path))
        if nav.is_complete(vector):
            self._accept(k, path)
            return
        candidates = []
        for dim in nav.preferred_dims(vector, self.n):
            nb = self.node_id ^ (1 << dim)
            if nb in self.suspected or nb in path:
                continue
            candidates.append((dim, self.level_of_neighbor[nb]))
        choice = nav.pick_extreme(candidates, self.tie_break, self._rng)
        if choice is None:
            self._route_back(KIND_NACK, k, path, len(path) - 1, "stuck")
            return
        dim, level = choice
        nxt = self.node_id ^ (1 << dim)
        crossed = nav.cross(vector, dim)
        if level == 0 and not nav.is_complete(crossed):
            # The walk's stuck rule: every usable preferred neighbor is
            # 0-safe (faulty) and none is the destination.
            self._route_back(KIND_NACK, k, path, len(path) - 1, "stuck")
            return
        self._transmit(KIND_DATA, nxt, k, token=len(path),
                       payload=(k, crossed, path + (nxt,)), back=path)

    def _handle_dfs(self, msg: Message) -> None:
        k, route, idx = msg.payload
        self.send(msg.src, KIND_ACK, (k, idx))
        if (k, idx) in self._seen:
            if idx == len(route) - 1:
                self._accept(k, route[:idx + 1])
            return
        self._seen.add((k, idx))
        self.data_log.append((k, route[:idx + 1]))
        if idx == len(route) - 1:
            self._accept(k, route[:idx + 1])
            return
        self._transmit(KIND_DFS, route[idx + 1], k, token=idx + 1,
                       payload=(k, route, idx + 1), back=route[:idx + 1])


# ---------------------------------------------------------------------------
# the driver
# ---------------------------------------------------------------------------


def route_unicast_resilient(
    sl: SafetyLevels,
    source: int,
    dest: int,
    *,
    plan: Optional[ChaosPlan] = None,
    tie_break: nav.TieBreak = "lowest-dim",
    rng: RngLike = None,
    max_attempts: Optional[int] = None,
    fallback_attempts: int = 1,
    ack_timeout: Optional[int] = None,
    attempt_slack: int = 4,
    backoff_base: int = 2,
    backoff_cap: int = 16,
    reconverge: bool = True,
    trace: bool = False,
    strict: bool = False,
) -> Tuple[ResilientResult, Network]:
    """Deliver one unicast resiliently, optionally under a chaos plan.

    Returns ``(result, network)``.  The run-level invariants (no silent
    loss, at-most-once delivery, valid bounded paths) are asserted on
    the result before it is returned, and every run reports through the
    ``chaos_run`` observability hook.  ``strict=True`` raises
    :class:`~repro.simcore.errors.DeliveryTimeout` instead of returning
    a detected failure.

    ``max_attempts`` defaults to ``n + 1`` safety-level attempts —
    enough for every fault of a ``< n``-fault scenario to burn at most
    one attempt and still leave one for the post-reconvergence route
    that Property 2 guarantees feasible.
    """
    topo, faults = sl.topo, sl.faults
    topo.validate_node(source)
    topo.validate_node(dest)
    if faults.is_node_faulty(source):
        raise ValueError(f"source {topo.format_node(source)} is faulty")
    if faults.is_node_faulty(dest):
        raise ValueError(f"destination {topo.format_node(dest)} is faulty")
    n = topo.dimension
    h = topo.distance(source, dest)
    gen = as_rng(rng) if tie_break == "random" else None
    if max_attempts is None:
        max_attempts = n + 1

    # Timer budgets scale with the worst per-hop latency chaos can add.
    hop_ticks = 1
    if plan is not None:
        for tamper in plan.tampers:
            if tamper.delay_p > 0:
                hop_ticks = max(hop_ticks, 1 + tamper.max_extra_delay)
            if tamper.dup_p > 0:
                hop_ticks = max(hop_ticks, 2)
    if ack_timeout is None:
        ack_timeout = 2 * hop_ticks + 1

    procs: Dict[int, ResilientUnicastProcess] = {}

    def factory(node: int) -> ResilientUnicastProcess:
        proc = ResilientUnicastProcess(
            n=n,
            own_level=sl.level(node),
            level_of_neighbor={v: sl.level(v) for v in topo.neighbors(node)},
            tie_break=tie_break,
            rng=gen,
        )
        procs[node] = proc
        return proc

    net = Network(topo, faults, factory, trace=trace)
    controller = (ChaosController(net, plan).arm()
                  if plan is not None else None)

    # Harness-level reconvergence: stands in for the state-change-driven
    # GS re-stabilization.  Each mid-run kill pushes its single-node
    # delta into the incremental engine the moment it happens (the
    # paper's nodes react to a neighbor failure immediately, whether or
    # not the source ever re-routes), so the accumulated rounds/messages
    # are the per-event wire cost; reconverge_cb then only redistributes
    # the already-stable assignment to the surviving processes.
    view_box: List[Optional[IncrementalLevelView]] = [None]

    def on_node_fault(node: int, _time: int) -> None:
        if view_box[0] is None:
            view_box[0] = IncrementalLevelView(topo, faults)
        view_box[0].engine.apply_delta(add=[node])

    if reconverge:
        net.add_fault_listener(on_node_fault)

    def reconverge_cb() -> None:
        if not net.dead_nodes:
            return  # level assignment unchanged (links are not modeled)
        if view_box[0] is None:
            view_box[0] = IncrementalLevelView(topo, faults)
        fresh = view_box[0].refresh(faults.with_nodes(net.dead_nodes))
        for node, proc in procs.items():
            if node in net.processes:
                proc.own_level = fresh.level(node)
                proc.level_of_neighbor = {
                    v: fresh.level(v) for v in topo.neighbors(node)
                }

    def dfs_cb() -> Optional[List[int]]:
        live = faults.with_nodes(net.dead_nodes)
        if live.is_node_faulty(source) or live.is_node_faulty(dest):
            return None
        result = route_dfs(topo, live, source, dest)
        return list(result.path) \
            if result.status is RouteStatus.DELIVERED else None

    net.start()
    src = procs[source]
    src.begin_delivery(
        dest,
        max_attempts=max_attempts,
        fallback_attempts=fallback_attempts,
        ack_timeout=ack_timeout,
        hop_ticks=hop_ticks,
        attempt_slack=attempt_slack,
        backoff_base=backoff_base,
        backoff_cap=backoff_cap,
        reconverge_cb=reconverge_cb if reconverge else None,
        stale_cb=controller.is_stale if controller is not None else None,
        dfs_cb=dfs_cb,
    )
    net.run()

    # -- post-run measurement (harness-side, omniscient by design) ----------
    dst_proc = procs[dest]
    best_path: Dict[int, Tuple[int, ...]] = {}
    for proc in procs.values():
        for k, path in proc.data_log:
            if k not in best_path or len(path) > len(best_path[k]):
                best_path[k] = path

    attempts: List[AttemptRecord] = []
    for k in range(1, src.attempt_no + 1):
        stage, condition = src.attempt_meta[k]
        if dst_proc.accepted and dst_proc.accepted_attempt == k:
            outcome, reason = "delivered", None
            path = tuple(dst_proc.accepted_path or (source,))
        else:
            known = src.outcomes.get(k)
            outcome, reason = known if known is not None \
                else ("superseded", "run ended with attempt open")
            path = best_path.get(k, (source,))
        attempts.append(AttemptRecord(
            index=k, stage=stage, condition=condition, outcome=outcome,
            path=list(path), hops=len(path) - 1, reason=reason,
        ))

    delivered = dst_proc.accepted
    if delivered:
        stage = next(a.stage for a in attempts if a.outcome == "delivered")
    else:
        stage = attempts[-1].stage if attempts else "none"
    detail = None
    if not delivered:
        detail = ("no source condition held and DFS found no route"
                  if not attempts else
                  f"retry ladder exhausted after {len(attempts)} attempt(s)")
    result = ResilientResult(
        source=source, dest=dest, n=n, hamming=h,
        status="delivered" if delivered else "failed-detected",
        stage=stage,
        attempts=attempts,
        deliveries=1 if delivered else 0,
        duplicates=dst_proc.duplicates,
        node_kills=len(net.dead_nodes),
        link_kills=len(net.dead_links),
        tampered=controller.tampered if controller is not None else 0,
        stale_reroutes=src.stale_reroutes,
        latency=dst_proc.accepted_time if delivered else None,
        gs_rounds=view_box[0].gs_rounds if view_box[0] is not None else 0,
        gs_messages=view_box[0].gs_messages if view_box[0] is not None else 0,
        detail=detail,
    )
    check_chaos_invariants(result, topo, faults)
    record_chaos_run(result.chaos_record())
    if strict and not delivered:
        raise DeliveryTimeout(
            f"unicast {topo.format_node(source)} -> "
            f"{topo.format_node(dest)} failed after "
            f"{len(attempts)} attempt(s): {detail}"
        )
    return result, net
