"""The unicast protocol run as real message-passing on the simulator.

This is the fidelity check for :mod:`repro.routing.safety_unicast`: the
same source/intermediate rules executed by node processes that each hold
only their own level and their neighbors' levels (the state GS leaves
behind), with the navigation vector as the only routing state carried by
the message.  The test suite asserts the walk and the protocol produce the
same path for the same instance and tie-break policy.

The carried ``path`` tuple in the payload is *measurement instrumentation*
(like a trace), never consulted for forwarding decisions — the paper's
point is precisely that no history is needed, unlike Chen–Shin DFS.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..core.fault_models import RngLike, as_rng
from ..safety.levels import SafetyLevels
from ..simcore.message import Message
from ..simcore.network import Network
from ..simcore.node import NodeProcess
from . import navigation as nav
from .result import RouteResult, RouteStatus, SourceCondition
from .safety_unicast import check_feasibility

__all__ = ["UnicastProcess", "route_unicast_distributed", "KIND_UNICAST"]

KIND_UNICAST = "unicast"

ROUTER_NAME = "safety-level-distributed"


class UnicastProcess(NodeProcess):
    """Holds post-GS safety state and forwards unicast messages."""

    __slots__ = ("n", "own_level", "level_of_neighbor", "tie_break", "_rng",
                 "received")

    def __init__(self, n: int, own_level: int,
                 level_of_neighbor: Dict[int, int],
                 tie_break: nav.TieBreak, rng) -> None:
        super().__init__()
        self.n = n
        self.own_level = own_level
        self.level_of_neighbor = level_of_neighbor
        self.tie_break = tie_break
        self._rng = rng
        #: Payload paths of unicasts that terminated here.
        self.received: List[Tuple[int, ...]] = []

    # -- forwarding ---------------------------------------------------------

    def _neighbor_along(self, dim: int) -> int:
        return self.node_id ^ (1 << dim)

    def forward(self, vector: int, path: Tuple[int, ...]) -> None:
        """Apply the intermediate rule to a message currently held here."""
        if nav.is_complete(vector):
            self.received.append(path)
            self.trace("unicast-arrived", path)
            return
        candidates = [
            (dim, self.level_of_neighbor[self._neighbor_along(dim)])
            for dim in nav.preferred_dims(vector, self.n)
        ]
        choice = nav.pick_extreme(candidates, self.tie_break, self._rng)
        assert choice is not None
        dim, _level = choice
        nxt = self._neighbor_along(dim)
        self.send(nxt, KIND_UNICAST,
                  (nav.cross(vector, dim), path + (nxt,)),
                  payload_units=1)

    def on_message(self, msg: Message) -> None:
        vector, path = msg.payload
        self.forward(vector, path)


def route_unicast_distributed(
    sl: SafetyLevels,
    source: int,
    dest: int,
    tie_break: nav.TieBreak = "lowest-dim",
    rng: RngLike = None,
    trace: bool = False,
) -> Tuple[RouteResult, Network]:
    """Run one unicast end-to-end on the simulator.

    Returns the :class:`RouteResult` plus the network (for message/trace
    inspection).  Faulty source/destination raise, as in the walk version.
    """
    topo, faults = sl.topo, sl.faults
    topo.validate_node(source)
    topo.validate_node(dest)
    if faults.is_node_faulty(source):
        raise ValueError(f"source {topo.format_node(source)} is faulty")
    if faults.is_node_faulty(dest):
        raise ValueError(f"destination {topo.format_node(dest)} is faulty")
    gen = as_rng(rng) if tie_break == "random" else None
    h = topo.distance(source, dest)

    def factory(node: int) -> UnicastProcess:
        return UnicastProcess(
            n=topo.dimension,
            own_level=sl.level(node),
            level_of_neighbor={
                v: sl.level(v) for v in topo.neighbors(node)
            },
            tie_break=tie_break,
            rng=gen,
        )

    net = Network(topo, faults, factory, trace=trace)
    net.start()

    feas = check_feasibility(sl, source, dest, tie_break, gen)
    if not feas.feasible:
        result = RouteResult(
            router=ROUTER_NAME, source=source, dest=dest, hamming=h,
            status=RouteStatus.ABORTED_AT_SOURCE,
            detail="C1, C2 and C3 all fail at the source",
        )
        return result, net

    src_proc = net.process(source)
    assert isinstance(src_proc, UnicastProcess)
    if source == dest:
        src_proc.received.append((source,))
    else:
        assert feas.first_dim is not None
        vector = nav.cross(nav.initial_vector(source, dest), feas.first_dim)
        first_hop = source ^ (1 << feas.first_dim)
        src_proc.send(first_hop, KIND_UNICAST,
                      (vector, (source, first_hop)), payload_units=1)
    net.run()

    dst_proc = net.process(dest)
    assert isinstance(dst_proc, UnicastProcess)
    if dst_proc.received:
        path = list(dst_proc.received[-1])
        result = RouteResult(
            router=ROUTER_NAME, source=source, dest=dest, hamming=h,
            status=RouteStatus.DELIVERED, path=path,
            condition=feas.condition,
        )
    else:
        # The message was dropped at a fault: recover the partial path from
        # the drop record for diagnosis.
        partial: Optional[Tuple[int, ...]] = None
        for dropped in net.dropped:
            if dropped.message.kind == KIND_UNICAST:
                partial = dropped.message.payload[1]
        result = RouteResult(
            router=ROUTER_NAME, source=source, dest=dest, hamming=h,
            status=RouteStatus.STUCK,
            path=list(partial[:-1]) if partial else [source],
            condition=feas.condition,
            detail="message dropped at a fault",
        )
    return result, net
