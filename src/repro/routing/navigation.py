"""Navigation vectors (paper Section 3.1).

The unicast message carries ``N = s XOR d``: bit ``i`` set means dimension
``i`` still needs to be crossed.  Forwarding over a preferred dimension
*resets* that bit; a spare hop *sets* it (the detour must be undone).  The
message has arrived exactly when ``N == 0`` — intermediate nodes never need
to know the destination address itself.
"""

from __future__ import annotations

from typing import List, Optional

from ..core import bits

__all__ = [
    "initial_vector",
    "is_complete",
    "preferred_dims",
    "spare_dims",
    "cross",
    "TieBreak",
    "pick_extreme",
]


def initial_vector(source: int, dest: int) -> int:
    """``N = s XOR d`` computed at the source."""
    return source ^ dest


def is_complete(nav: int) -> bool:
    """All differing dimensions crossed — current node is the destination."""
    return nav == 0


def preferred_dims(nav: int, n: int) -> List[int]:
    """Dimensions still to cross (set bits of ``N``), ascending."""
    return [i for i in range(n) if (nav >> i) & 1]


def spare_dims(nav: int, n: int) -> List[int]:
    """Dimensions not currently needed (clear bits of ``N``), ascending."""
    return [i for i in range(n) if not (nav >> i) & 1]


def cross(nav: int, dim: int) -> int:
    """Navigation vector after forwarding along ``dim`` (bit toggles:
    preferred hops clear it, spare hops set it)."""
    return nav ^ bits.unit_vector(dim)


#: Deterministic tie-breaking policies for "the neighbor with the highest
#: safety level" when several candidates tie (the paper says "say, along
#: dimension 0" — i.e. any choice is fine; E12 measures whether it matters).
TieBreak = str
TIE_BREAKS = ("lowest-dim", "highest-dim", "random")


def pick_extreme(
    candidates: List[tuple[int, int]],
    tie_break: TieBreak = "lowest-dim",
    rng=None,
) -> Optional[tuple[int, int]]:
    """Pick the ``(dim, level)`` candidate with maximal level.

    ``candidates`` are ``(dim, level)`` pairs.  Returns None on empty
    input.  ``rng`` is required for the ``"random"`` policy.
    """
    if not candidates:
        return None
    best_level = max(level for _dim, level in candidates)
    tied = [c for c in candidates if c[1] == best_level]
    if tie_break == "lowest-dim":
        return min(tied)
    if tie_break == "highest-dim":
        return max(tied)
    if tie_break == "random":
        if rng is None:
            raise ValueError("random tie-break needs an rng")
        return tied[int(rng.integers(len(tied)))]
    raise ValueError(f"unknown tie-break policy {tie_break!r}")
