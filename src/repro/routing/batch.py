"""Batched unicast routing: the Section 3.2 algorithm over route matrices.

:func:`repro.routing.safety_unicast.route_unicast` walks one (source,
destination) pair at a time — fine for examples, but the sweep experiments
route tens of thousands of pairs per Monte-Carlo cell, and the Python
per-hop loop dominates their wall-clock.  This module evaluates the same
algorithm for whole ``(trials, pairs)`` matrices at once, on top of the
stacked level matrices that :func:`repro.safety.levels.
compute_safety_levels_batch` already produces:

* the C1/C2/C3 source conditions are computed for every route in a few
  vectorized gathers through the shared :func:`repro.core.hypercube.
  neighbor_table` XOR index matrix;
* preferred/spare "neighbor with the highest safety level" picks are
  masked argmax reductions whose first/last-maximum behaviour reproduces
  the ``lowest-dim``/``highest-dim`` tie-break policies exactly;
* the walk advances every in-flight route lock-step, one hop per
  iteration, with finished/stuck routes dropping out of the active set —
  at most ``n + 2`` iterations total, since C1/C2 paths have length
  ``H <= n`` and C3 paths length ``H + 2`` (Theorem 3 via Property 2).

The result is bit-identical to the scalar walk on every (fault mask,
source, destination): same status, same admitting condition, same hop
count, same node path.  The equivalence is enforced by the test suite and
re-asserted by ``benchmarks/bench_routing_throughput.py`` on every run.

``tie_break="random"`` draws from a single shared generator in an order
that vectorization cannot reproduce, so it dispatches to the scalar
reference implementation (one :func:`_route_unicast` per route, in
row-major order — document draws stay with the scalar router).  Setting
``REPRO_ROUTE_KERNEL=scalar`` (or ``kernel="scalar"``) forces that
reference path for any policy — the A/B switch the benchmark and the
``--route-kernel`` CLI flag use.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple, Union

import numpy as np

from ..core import bits
from ..core import native
from ..core.dispatch import resolve_kernel_name
from ..core.fault_models import RngLike, as_rng
from ..core.faults import FaultSet
from ..core.hypercube import Hypercube, neighbor_table
from ..core.native import njit
from ..obs.instruments import record_routing_batch
from ..safety.levels import SafetyLevels
from . import navigation as nav
from .result import RouteResult, RouteStatus, SourceCondition
from .safety_unicast import ROUTER_NAME, _route_unicast

__all__ = [
    "KERNEL_ENV_VAR",
    "KERNELS",
    "resolve_kernel",
    "BatchFeasibility",
    "BatchRouteResult",
    "check_feasibility_batch",
    "pack_neighbor_levels",
    "route_unicast_batch",
    "route_with_table",
]

#: Environment knob consulted when no explicit ``kernel`` is passed.
KERNEL_ENV_VAR = "REPRO_ROUTE_KERNEL"

#: Recognized kernel names: the vectorized matrix walk, the scalar
#: per-route reference implementation, or the packed-word kernel that
#: keeps all ``n`` neighbor levels of a node in one uint64 (numba-compiled
#: walk when numba is importable, pure-numpy word unpacking otherwise).
KERNELS = ("vectorized", "scalar", "packed")

#: The packed kernel stores one level per 4-bit nibble, so it requires
#: ``n <= 15``; larger cubes resolve to the vectorized kernel instead.
_PACKED_MAX_DIMENSION = 15

#: Integer codes used by the batch arrays (stable: tests and telemetry
#: consumers rely on the order).
_STATUS_BY_CODE: Tuple[RouteStatus, ...] = (
    RouteStatus.DELIVERED,
    RouteStatus.ABORTED_AT_SOURCE,
    RouteStatus.STUCK,
)
_DELIVERED, _ABORTED, _STUCK = 0, 1, 2
_PENDING = -1  # transient walk state; never visible in results

_CONDITION_BY_CODE: Tuple[SourceCondition, ...] = (
    SourceCondition.C1,
    SourceCondition.C2,
    SourceCondition.C3,
    SourceCondition.NONE,
)
_C1, _C2, _C3, _NONE = 0, 1, 2, 3

_ABORT_DETAIL = "C1, C2 and C3 all fail at the source"


def resolve_kernel(
    tie_break: nav.TieBreak,
    kernel: Optional[str] = None,
    n: Optional[int] = None,
) -> str:
    """The kernel a batch call will dispatch to.

    Explicit ``kernel`` argument wins, else the ``REPRO_ROUTE_KERNEL``
    environment variable, else ``"vectorized"`` (resolution and
    validation via :func:`repro.core.dispatch.resolve_kernel_name`, the
    helper shared with the level-kernel seam).  ``tie_break="random"``
    always resolves to ``"scalar"`` (shared-generator draw order), and
    ``"packed"`` resolves to ``"vectorized"`` when ``n`` is given and
    exceeds the 4-bit nibble capacity (``n > 15``).
    """
    name = resolve_kernel_name(KERNEL_ENV_VAR, KERNELS, kernel,
                               "vectorized", what="routing kernel")
    if tie_break == "random":
        return "scalar"
    if name == "packed" and n is not None and n > _PACKED_MAX_DIMENSION:
        return "vectorized"
    return name


@dataclass(frozen=True)
class BatchFeasibility:
    """Source-rule outcome for a ``(trials, pairs)`` route matrix.

    ``condition`` holds :data:`SourceCondition` codes (C1=0, C2=1, C3=2,
    none=3); ``first_dim`` the dimension of the source rule's first hop
    (-1 where infeasible or source == destination).
    """

    condition: np.ndarray
    first_dim: np.ndarray

    @property
    def feasible(self) -> np.ndarray:
        """Boolean matrix: some condition admitted the unicast."""
        return self.condition != _NONE

    def condition_of(self, trial: int, pair: int) -> SourceCondition:
        return _CONDITION_BY_CODE[int(self.condition[trial, pair])]


@dataclass(frozen=True)
class BatchRouteResult:
    """Outcomes of a ``(trials, pairs)`` batch of unicast attempts.

    Array views of what :class:`~repro.routing.result.RouteResult` holds
    per route; :meth:`result` / :meth:`iter_results` materialize exact
    scalar results (including detail strings) for auditing and tests.

    ``paths`` is the compressed path buffer: row-padded with -1, column
    ``k`` holding the ``k``-th node of the route, ``hops + 1`` valid
    entries per delivered/stuck route (aborted routes have none — the
    scalar router never injects the message).  Present only when the
    batch was routed with ``return_paths=True``.
    """

    topo: Hypercube
    tie_break: str
    kernel: str
    sources: np.ndarray       # (B, P) int64
    dests: np.ndarray         # (B, P) int64
    hamming: np.ndarray       # (B, P) int64
    status: np.ndarray        # (B, P) int8 status codes
    condition: np.ndarray     # (B, P) int8 condition codes
    first_dim: np.ndarray     # (B, P) int8, -1 = none
    hops: np.ndarray          # (B, P) int64 traversed links (0 if aborted)
    paths: Optional[np.ndarray] = None   # (B, P, n + 3) int32, -1 padded

    # -- shape ---------------------------------------------------------------

    @property
    def trials(self) -> int:
        return self.status.shape[0]

    @property
    def pairs(self) -> int:
        return self.status.shape[1]

    @property
    def routes(self) -> int:
        return self.status.size

    # -- derived masks and metrics ------------------------------------------

    @property
    def delivered(self) -> np.ndarray:
        return self.status == _DELIVERED

    @property
    def aborted(self) -> np.ndarray:
        return self.status == _ABORTED

    @property
    def stuck(self) -> np.ndarray:
        return self.status == _STUCK

    @property
    def detour(self) -> np.ndarray:
        """``hops - H`` where delivered, -1 elsewhere (scalar reports None)."""
        return np.where(self.delivered, self.hops - self.hamming, -1)

    @property
    def optimal(self) -> np.ndarray:
        return self.delivered & (self.hops == self.hamming)

    @property
    def suboptimal(self) -> np.ndarray:
        return self.delivered & (self.hops == self.hamming + 2)

    def status_counts(self) -> dict:
        """RouteStatus value -> route count (only statuses that occur)."""
        counts = np.bincount(self.status.ravel(),
                             minlength=len(_STATUS_BY_CODE))
        return {
            _STATUS_BY_CODE[code].value: int(c)
            for code, c in enumerate(counts) if c
        }

    def condition_counts(self) -> dict:
        """SourceCondition value -> route count (only conditions that occur)."""
        counts = np.bincount(self.condition.ravel(),
                             minlength=len(_CONDITION_BY_CODE))
        return {
            _CONDITION_BY_CODE[code].value: int(c)
            for code, c in enumerate(counts) if c
        }

    # -- scalar materialization ---------------------------------------------

    def path_of(self, trial: int, pair: int) -> List[int]:
        """The node path of one route (empty for aborted attempts)."""
        if int(self.status[trial, pair]) == _ABORTED:
            return []
        if self.paths is None:
            raise ValueError(
                "this batch was routed without return_paths=True; "
                "re-route with paths to materialize them"
            )
        end = int(self.hops[trial, pair]) + 1
        return self.paths[trial, pair, :end].tolist()

    def result(self, trial: int, pair: int) -> RouteResult:
        """The exact scalar :class:`RouteResult` of one route."""
        status = _STATUS_BY_CODE[int(self.status[trial, pair])]
        condition = _CONDITION_BY_CODE[int(self.condition[trial, pair])]
        detail = None
        path: List[int] = []
        if status is RouteStatus.ABORTED_AT_SOURCE:
            detail = _ABORT_DETAIL
        else:
            path = self.path_of(trial, pair)
            if status is RouteStatus.STUCK:
                detail = (
                    f"all preferred neighbors of "
                    f"{self.topo.format_node(path[-1])} are faulty"
                )
        return RouteResult(
            router=ROUTER_NAME,
            source=int(self.sources[trial, pair]),
            dest=int(self.dests[trial, pair]),
            hamming=int(self.hamming[trial, pair]),
            status=status,
            path=path,
            condition=condition,
            detail=detail,
        )

    def iter_results(self) -> Iterator[RouteResult]:
        """All routes as scalar results, row-major (trial 0 pair 0, ...)."""
        for t in range(self.trials):
            for p in range(self.pairs):
                yield self.result(t, p)


# -- input normalization -----------------------------------------------------


def _as_level_matrix(
    levels: Union[SafetyLevels, np.ndarray],
) -> Tuple[Optional[Hypercube], np.ndarray]:
    if isinstance(levels, SafetyLevels):
        return levels.topo, np.asarray(levels.levels)[None, :]
    arr = np.asarray(levels)
    if arr.ndim == 1:
        arr = arr[None, :]
    if arr.ndim != 2:
        raise ValueError(
            f"levels must be a (2**n,) vector or (B, 2**n) matrix, "
            f"got shape {arr.shape}"
        )
    return None, arr


def _as_route_matrix(values, batch: int, name: str) -> np.ndarray:
    arr = np.asarray(values, dtype=np.int64)
    if arr.ndim == 0:
        arr = arr[None]
    if arr.ndim == 1:
        arr = np.broadcast_to(arr, (batch, arr.size))
    if arr.ndim != 2 or arr.shape[0] != batch:
        raise ValueError(
            f"{name} must broadcast to ({batch}, pairs), got shape "
            f"{np.asarray(values).shape}"
        )
    return arr


def _normalize_batch(
    topo: Hypercube,
    levels: Union[SafetyLevels, np.ndarray],
    sources, dests,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Validate shapes/ranges/liveness; returns (levels2d, src, dst)."""
    sl_topo, lv = _as_level_matrix(levels)
    if sl_topo is not None and sl_topo != topo:
        raise ValueError(f"levels were computed on {sl_topo}, not {topo}")
    if lv.shape[1] != topo.num_nodes:
        raise ValueError(
            f"levels have {lv.shape[1]} nodes per row; {topo} has "
            f"{topo.num_nodes}"
        )
    batch = lv.shape[0]
    src = _as_route_matrix(sources, batch, "sources")
    dst = _as_route_matrix(dests, batch, "dests")
    if src.shape != dst.shape:
        try:
            src, dst = np.broadcast_arrays(src, dst)
        except ValueError:
            raise ValueError(
                f"sources {src.shape} and dests {dst.shape} disagree"
            ) from None
        src = np.ascontiguousarray(src)
        dst = np.ascontiguousarray(dst)
    for name, arr in (("sources", src), ("dests", dst)):
        if arr.size and (arr.min() < 0 or arr.max() >= topo.num_nodes):
            raise ValueError(f"{name} contain addresses outside {topo}")
    # Level 0 <=> faulty (a nonfaulty node is always >= 1-safe), so the
    # level matrix itself carries the endpoint-liveness check the scalar
    # router performs against the FaultSet.
    rows = np.arange(batch)[:, None]
    for name, arr in (("source", src), ("destination", dst)):
        dead = lv[rows, arr] == 0
        if dead.any():
            t, p = np.argwhere(dead)[0]
            raise ValueError(
                f"{name} {topo.format_node(int(arr[t, p]))} is faulty "
                f"(trial {int(t)}, pair {int(p)})"
            )
    return lv, src, dst


# -- the packed neighbor-level encoding --------------------------------------


def _pack_neighbor_levels(
    lv: np.ndarray, table: np.ndarray, n: int
) -> np.ndarray:
    """One int64 word per (trial, node): neighbor ``j``'s level in nibble
    ``j`` (``n <= 15``, levels ``<= n <= 15`` — both fit 4 bits).

    Costs ``n`` full-cube gathers up front; in exchange every walk step
    reads a single word per route instead of gathering an ``(R, n)``
    level matrix, and the numba walker never touches numpy dispatch.
    """
    pn = np.zeros(lv.shape, dtype=np.int64)
    for j in range(n):
        pn |= lv[:, table[:, j]].astype(np.int64) << (4 * j)
    return pn.reshape(-1)


def _unpack_words(words: np.ndarray, shifts: np.ndarray) -> np.ndarray:
    """``(R,)`` packed words -> ``(R, n)`` int8 neighbor-level matrix."""
    return ((words[:, None] >> shifts) & 0xF).astype(np.int8)


def pack_neighbor_levels(levels: np.ndarray, n: int) -> np.ndarray:
    """One epoch's ``(2**n,)`` level vector -> packed neighbor words.

    The precompute-once half of the packed-word walk: node ``v``'s word
    holds neighbor ``j``'s level in nibble ``j``, so a route step reads a
    single int64 instead of gathering ``n`` levels.  The routing service
    publishes exactly this array (alongside the raw levels) into each
    epoch's shared-memory table, paying the ``n`` full-cube gathers once
    per *fault epoch* rather than once per batch call.  Requires
    ``n <= 15`` (4-bit nibbles).
    """
    if n > _PACKED_MAX_DIMENSION:
        raise ValueError(
            f"packed neighbor words need n <= {_PACKED_MAX_DIMENSION} "
            f"(4-bit level nibbles), got n={n}"
        )
    lv = np.asarray(levels)
    if lv.ndim != 1 or lv.shape[0] != (1 << n):
        raise ValueError(
            f"levels must be one ({1 << n},) epoch vector, got {lv.shape}"
        )
    return _pack_neighbor_levels(lv[None, :], neighbor_table(n), n)


# -- the vectorized source rule ---------------------------------------------


def _masked_argmax(
    values: np.ndarray, mask: np.ndarray, tie_break: str
) -> Tuple[np.ndarray, np.ndarray]:
    """Per-row (dim, level) of the max *masked* entry, tie-broken.

    ``np.argmax`` returns the first maximal index, which is exactly the
    ``lowest-dim`` policy; ``highest-dim`` reduces over the reversed
    column order instead.  Rows whose mask is empty report level -1.
    """
    masked = np.where(mask, values, np.int8(-1))
    if tie_break == "lowest-dim":
        dims = np.argmax(masked, axis=1)
    elif tie_break == "highest-dim":
        dims = masked.shape[1] - 1 - np.argmax(masked[:, ::-1], axis=1)
    else:
        raise ValueError(
            f"vectorized kernel supports deterministic tie-breaks only, "
            f"got {tie_break!r}"
        )
    levels = np.take_along_axis(masked, dims[:, None], axis=1)[:, 0]
    return dims.astype(np.int64), levels


def _source_rule(
    lv_flat: np.ndarray,
    base: np.ndarray,
    table: np.ndarray,
    src: np.ndarray,
    dst: np.ndarray,
    n: int,
    tie_break: str,
    pn_flat: Optional[np.ndarray] = None,
    shifts: Optional[np.ndarray] = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Flat C1/C2/C3 evaluation; returns (h, condition, first_dim).

    With ``pn_flat``/``shifts`` the neighbor levels come from one packed
    word per source instead of ``n`` gathers (the packed kernel's path);
    the decision logic is shared either way.
    """
    nvec = src ^ dst
    h = bits.popcount_array(nvec)
    own = lv_flat[base + src]
    if pn_flat is not None:
        nbr = _unpack_words(pn_flat[base + src], shifts)
    else:
        nbr = lv_flat[base[:, None] + table[src]]      # (R, n) levels
    pref = ((nvec[:, None] >> np.arange(n)) & 1).astype(bool)
    pdim, plev = _masked_argmax(nbr, pref, tie_break)
    sdim, slev = _masked_argmax(nbr, ~pref, tie_break)

    moving = h > 0
    c1 = moving & (own >= h)
    c2 = moving & ~c1 & (plev >= h - 1)
    c3 = moving & ~c1 & ~c2 & (slev >= h + 1)

    condition = np.full(h.shape, _NONE, dtype=np.int8)
    condition[~moving] = _C1          # source == dest: trivially C1
    condition[c1] = _C1
    condition[c2] = _C2
    condition[c3] = _C3

    first_dim = np.full(h.shape, -1, dtype=np.int8)
    optimal = c1 | c2
    first_dim[optimal] = pdim[optimal]
    first_dim[c3] = sdim[c3]
    return h, condition, first_dim


def check_feasibility_batch(
    topo: Hypercube,
    levels: Union[SafetyLevels, np.ndarray],
    sources, dests,
    tie_break: nav.TieBreak = "lowest-dim",
) -> BatchFeasibility:
    """The paper's C1/C2/C3 source tests for a whole route matrix.

    ``levels`` is a :class:`SafetyLevels`, a ``(2**n,)`` vector, or the
    ``(B, 2**n)`` matrix from :func:`compute_safety_levels_batch`;
    ``sources``/``dests`` broadcast to ``(B, pairs)``.  Per route the
    outcome equals scalar :func:`check_feasibility` under the same
    deterministic tie-break (``"random"`` is scalar-only — its draws
    belong to a caller-owned generator).
    """
    lv, src, dst = _normalize_batch(topo, levels, sources, dests)
    if tie_break == "random":
        raise ValueError(
            "check_feasibility_batch is deterministic; use scalar "
            "check_feasibility for the random tie-break policy"
        )
    n = topo.dimension
    batch, pairs = src.shape
    base = np.repeat(np.arange(batch, dtype=np.int64) * topo.num_nodes,
                     pairs)
    lv_flat = np.ascontiguousarray(lv, dtype=np.int8).reshape(-1)
    _h, condition, first_dim = _source_rule(
        lv_flat, base, neighbor_table(n), src.reshape(-1), dst.reshape(-1),
        n, tie_break,
    )
    return BatchFeasibility(condition=condition.reshape(batch, pairs),
                            first_dim=first_dim.reshape(batch, pairs))


# -- the batched walk --------------------------------------------------------


def _route_batch_vectorized(
    topo: Hypercube,
    lv: np.ndarray,
    src2d: np.ndarray,
    dst2d: np.ndarray,
    tie_break: str,
    return_paths: bool,
    pn_flat: Optional[np.ndarray] = None,
) -> Tuple[np.ndarray, ...]:
    n, num_nodes = topo.dimension, topo.num_nodes
    batch, pairs = src2d.shape
    routes = batch * pairs
    src = src2d.reshape(routes)
    dst = dst2d.reshape(routes)
    base = np.repeat(np.arange(batch, dtype=np.int64) * num_nodes, pairs)
    lv_flat = np.ascontiguousarray(lv, dtype=np.int8).reshape(-1)
    table = neighbor_table(n)
    dims_range = np.arange(n, dtype=np.int64)
    shifts = 4 * dims_range if pn_flat is not None else None

    h, condition, first_dim = _source_rule(
        lv_flat, base, table, src, dst, n, tie_break,
        pn_flat=pn_flat, shifts=shifts)

    status = np.full(routes, _PENDING, dtype=np.int8)
    status[h == 0] = _DELIVERED
    status[(h > 0) & (condition == _NONE)] = _ABORTED
    hops = np.zeros(routes, dtype=np.int64)
    paths = None
    if return_paths:
        paths = np.full((routes, n + 3), -1, dtype=np.int32)
        trivial = h == 0
        paths[trivial, 0] = src[trivial]

    # First hop: the source rule's pick.  Thereafter the intermediate
    # rule, every in-flight route advancing lock-step.
    nvec = src ^ dst
    cur = src.copy()
    active = np.flatnonzero(status == _PENDING)
    if active.size:
        step = np.int64(1) << first_dim[active].astype(np.int64)
        cur[active] = src[active] ^ step
        nvec[active] ^= step
        hops[active] = 1
        if paths is not None:
            paths[active, 0] = src[active]
            paths[active, 1] = cur[active]
        arrived = nvec[active] == 0
        status[active[arrived]] = _DELIVERED
        active = active[~arrived]

    # C1/C2 walks take H <= n hops, C3 walks H + 2 <= n + 1 (a spare
    # dimension only exists when H < n), so n + 2 iterations cover every
    # route; running dry earlier just breaks out.
    for _hop in range(2, n + 3):
        if active.size == 0:
            break
        a_cur = cur[active]
        a_nav = nvec[active]
        if pn_flat is not None:
            nbr = _unpack_words(pn_flat[base[active] + a_cur], shifts)
        else:
            nbr = lv_flat[base[active][:, None] + table[a_cur]]
        pref = ((a_nav[:, None] >> dims_range) & 1).astype(bool)
        dim, lev = _masked_argmax(nbr, pref, tie_break)
        step = np.int64(1) << dim
        nxt = a_cur ^ step
        # Defensive STUCK check, mirroring the scalar walk: impossible
        # when a source condition held (Theorem 3), kept so experiments
        # can probe beyond the guarantees.
        blocked = (lev == 0) & (nxt != dst[active])
        status[active[blocked]] = _STUCK
        moving = ~blocked
        rows = active[moving]
        cur[rows] = nxt[moving]
        nvec[rows] = a_nav[moving] ^ step[moving]
        hops[rows] += 1
        if paths is not None:
            paths[rows, hops[rows]] = nxt[moving]
        arrived = nvec[rows] == 0
        status[rows[arrived]] = _DELIVERED
        active = rows[~arrived]
    if active.size:
        raise AssertionError(
            "batched walk exceeded the n + 2 hop bound; this contradicts "
            "Theorem 3 and indicates a kernel bug"
        )

    shape = (batch, pairs)
    return (
        h.reshape(shape),
        status.reshape(shape),
        condition.reshape(shape),
        first_dim.reshape(shape),
        hops.reshape(shape),
        paths.reshape(batch, pairs, n + 3) if paths is not None else None,
    )


@njit(cache=True)
def _walk_packed(
    pn_flat: np.ndarray,
    lv_flat: np.ndarray,
    base: np.ndarray,
    src: np.ndarray,
    dst: np.ndarray,
    n: int,
    highest: bool,
    want_paths: bool,
    hamming: np.ndarray,
    status: np.ndarray,
    condition: np.ndarray,
    first_dim: np.ndarray,
    hops: np.ndarray,
    paths: np.ndarray,
) -> int:
    """Per-route source rule + walk over packed neighbor words.

    The loop-fused twin of :func:`_route_batch_vectorized` (same
    decisions hop for hop): runs native under numba; without numba it is
    a plain-Python reference the tests still exercise on small cases.
    Returns the number of routes that exceeded the ``n + 2`` hop bound
    (always 0 — Theorem 3 — asserted by the caller).
    """
    overruns = 0
    for r in range(src.shape[0]):
        s = src[r]
        d = dst[r]
        b = base[r]
        nvec = s ^ d
        h = 0
        x = nvec
        while x != 0:
            h += x & 1
            x >>= 1
        hamming[r] = h
        first_dim[r] = -1
        hops[r] = 0
        if h == 0:
            status[r] = 0                       # delivered in place
            condition[r] = 0                    # trivially C1
            if want_paths:
                paths[r, 0] = s
            continue
        word = pn_flat[b + s]
        own = lv_flat[b + s]
        pbest = -1
        pdim = -1
        sbest = -1
        sdim = -1
        for j in range(n):
            lev = (word >> (4 * j)) & 15
            if (nvec >> j) & 1 == 1:
                if lev > pbest or (highest and lev >= pbest):
                    pbest = lev
                    pdim = j
            else:
                if lev > sbest or (highest and lev >= sbest):
                    sbest = lev
                    sdim = j
        if own >= h:
            cond = 0
            fdim = pdim
        elif pbest >= h - 1:
            cond = 1
            fdim = pdim
        elif sbest >= h + 1:
            cond = 2
            fdim = sdim
        else:
            status[r] = 1                       # aborted at source
            condition[r] = 3
            continue
        condition[r] = cond
        first_dim[r] = fdim
        cur = s ^ (1 << fdim)
        nv = nvec ^ (1 << fdim)
        hop = 1
        if want_paths:
            paths[r, 0] = s
            paths[r, 1] = cur
        stat = 0 if nv == 0 else -1
        while stat == -1:
            if hop >= n + 2:
                overruns += 1
                break
            w = pn_flat[b + cur]
            best = -1
            bdim = -1
            for j in range(n):
                if (nv >> j) & 1 == 1:
                    lev = (w >> (4 * j)) & 15
                    if lev > best or (highest and lev >= best):
                        best = lev
                        bdim = j
            nxt = cur ^ (1 << bdim)
            if best == 0 and nxt != d:
                stat = 2                        # stuck (defensive)
                break
            cur = nxt
            nv ^= 1 << bdim
            hop += 1
            if want_paths:
                paths[r, hop] = cur
            if nv == 0:
                stat = 0
        status[r] = stat
        hops[r] = hop
    return overruns


def _route_batch_packed(
    topo: Hypercube,
    lv: np.ndarray,
    src2d: np.ndarray,
    dst2d: np.ndarray,
    tie_break: str,
    return_paths: bool,
    use_numba: Optional[bool] = None,
) -> Tuple[np.ndarray, ...]:
    """The packed-word kernel: pack once, then walk on single-word reads.

    Dispatches the walk to the numba-compiled :func:`_walk_packed` when
    numba is importable (``use_numba=None``), else runs the lock-step
    numpy walk over the same packed words.  Both are bit-identical to
    :func:`_route_batch_vectorized`.
    """
    n, num_nodes = topo.dimension, topo.num_nodes
    if n > _PACKED_MAX_DIMENSION:
        raise ValueError(
            f"packed routing kernel supports n <= {_PACKED_MAX_DIMENSION} "
            f"(4-bit level nibbles), got n={n}"
        )
    lv8 = np.ascontiguousarray(lv, dtype=np.int8)
    table = neighbor_table(n)
    pn_flat = _pack_neighbor_levels(lv8, table, n)
    jit = native.numba_available() if use_numba is None else use_numba
    if not jit:
        return _route_batch_vectorized(topo, lv, src2d, dst2d, tie_break,
                                       return_paths, pn_flat=pn_flat)
    if tie_break == "lowest-dim":
        highest = False
    elif tie_break == "highest-dim":
        highest = True
    else:
        raise ValueError(
            f"packed kernel supports deterministic tie-breaks only, "
            f"got {tie_break!r}"
        )
    batch, pairs = src2d.shape
    routes = batch * pairs
    src = np.ascontiguousarray(src2d.reshape(routes))
    dst = np.ascontiguousarray(dst2d.reshape(routes))
    base = np.repeat(np.arange(batch, dtype=np.int64) * num_nodes, pairs)
    lv_flat = lv8.reshape(-1)
    hamming = np.empty(routes, dtype=np.int64)
    status = np.empty(routes, dtype=np.int8)
    condition = np.empty(routes, dtype=np.int8)
    first_dim = np.empty(routes, dtype=np.int8)
    hops = np.empty(routes, dtype=np.int64)
    paths = np.full((routes, n + 3), -1, dtype=np.int32) if return_paths \
        else np.empty((1, 1), dtype=np.int32)
    overruns = _walk_packed(pn_flat, lv_flat, base, src, dst, n, highest,
                            return_paths, hamming, status, condition,
                            first_dim, hops, paths)
    if overruns:
        raise AssertionError(
            "packed walk exceeded the n + 2 hop bound; this contradicts "
            "Theorem 3 and indicates a kernel bug"
        )
    shape = (batch, pairs)
    return (
        hamming.reshape(shape),
        status.reshape(shape),
        condition.reshape(shape),
        first_dim.reshape(shape),
        hops.reshape(shape),
        paths.reshape(batch, pairs, n + 3) if return_paths else None,
    )


def _route_batch_scalar(
    topo: Hypercube,
    lv: np.ndarray,
    src2d: np.ndarray,
    dst2d: np.ndarray,
    tie_break: str,
    rng: RngLike,
    return_paths: bool,
) -> Tuple[np.ndarray, ...]:
    """Reference kernel: one scalar walk per route, row-major order.

    Used for ``tie_break="random"`` (draws happen pair after pair from
    the shared generator, trial 0 pair 0 first) and for the
    ``REPRO_ROUTE_KERNEL=scalar`` A/B switch.
    """
    n = topo.dimension
    batch, pairs = src2d.shape
    gen = as_rng(rng) if tie_break == "random" else None
    hamming = np.zeros((batch, pairs), dtype=np.int64)
    status = np.empty((batch, pairs), dtype=np.int8)
    condition = np.empty((batch, pairs), dtype=np.int8)
    first_dim = np.full((batch, pairs), -1, dtype=np.int8)
    hops = np.zeros((batch, pairs), dtype=np.int64)
    paths = np.full((batch, pairs, n + 3), -1, dtype=np.int32) \
        if return_paths else None
    status_code = {s: c for c, s in enumerate(_STATUS_BY_CODE)}
    condition_code = {s: c for c, s in enumerate(_CONDITION_BY_CODE)}
    for t in range(batch):
        row_levels = np.asarray(lv[t], dtype=np.int64)
        faults = FaultSet(nodes=frozenset(
            int(v) for v in np.flatnonzero(row_levels == 0)))
        sl = SafetyLevels(topo=topo, faults=faults, levels=row_levels)
        for p in range(pairs):
            res = _route_unicast(sl, int(src2d[t, p]), int(dst2d[t, p]),
                                 tie_break, gen)
            hamming[t, p] = res.hamming
            status[t, p] = status_code[res.status]
            condition[t, p] = condition_code[res.condition]
            hops[t, p] = res.hops
            if res.path and len(res.path) > 1:
                first_dim[t, p] = (res.path[0] ^ res.path[1]).bit_length() - 1
            if paths is not None and res.path:
                paths[t, p, :len(res.path)] = res.path
    return hamming, status, condition, first_dim, hops, paths


def route_unicast_batch(
    topo: Hypercube,
    levels: Union[SafetyLevels, np.ndarray],
    sources, dests,
    tie_break: nav.TieBreak = "lowest-dim",
    rng: RngLike = None,
    return_paths: bool = False,
    kernel: Optional[str] = None,
) -> BatchRouteResult:
    """Route a whole ``(trials, pairs)`` matrix of safety-level unicasts.

    ``levels`` is a :class:`SafetyLevels` (one trial), a ``(2**n,)``
    vector, or the stacked ``(B, 2**n)`` matrix from
    :func:`~repro.safety.levels.compute_safety_levels_batch`; row ``b``
    must be the Definition-1 assignment of trial ``b``'s fault set.
    ``sources``/``dests`` are integers, ``(pairs,)`` vectors (shared by
    every trial) or ``(B, pairs)`` matrices.  Endpoints must be nonfaulty
    (level > 0), exactly like the scalar router.

    Every route's outcome is bit-identical to
    :func:`~repro.routing.safety_unicast.route_unicast` on the same
    (fault set, source, destination) — status, admitting condition, hop
    count, and (with ``return_paths=True``) the full node path.

    ``kernel`` picks the implementation (:func:`resolve_kernel`);
    ``tie_break="random"`` always runs the scalar reference so the shared
    ``rng`` draws pair by pair in row-major order.  One ``routing_batch``
    telemetry record covers the whole call — batch counters instead of
    per-attempt events.
    """
    lv, src, dst = _normalize_batch(topo, levels, sources, dests)
    chosen = resolve_kernel(tie_break, kernel, n=topo.dimension)
    if chosen == "scalar":
        hamming, status, condition, first_dim, hops, paths = \
            _route_batch_scalar(topo, lv, src, dst, tie_break, rng,
                                return_paths)
    elif chosen == "packed":
        hamming, status, condition, first_dim, hops, paths = \
            _route_batch_packed(topo, lv, src, dst, tie_break,
                                return_paths)
    else:
        hamming, status, condition, first_dim, hops, paths = \
            _route_batch_vectorized(topo, lv, src, dst, tie_break,
                                    return_paths)
    result = BatchRouteResult(
        topo=topo, tie_break=tie_break, kernel=chosen,
        sources=src, dests=dst, hamming=hamming, status=status,
        condition=condition, first_dim=first_dim, hops=hops, paths=paths,
    )
    record_routing_batch(result)
    return result


def route_with_table(
    topo: Hypercube,
    levels: np.ndarray,
    packed: Optional[np.ndarray],
    sources, dests,
    tie_break: nav.TieBreak = "lowest-dim",
    return_paths: bool = False,
) -> BatchRouteResult:
    """Route one epoch's request vector against a precomputed table.

    The routing service's hot path: ``levels`` is a single ``(2**n,)``
    epoch level vector and ``packed`` the matching
    :func:`pack_neighbor_levels` words (or ``None`` to gather through the
    neighbor table instead — the only option for ``n > 15``).  Semantics
    are exactly ``route_unicast_batch(topo, levels, sources, dests)``
    with the vectorized kernel — same statuses, conditions, hop counts,
    and paths, bit for bit — but the per-call neighbor packing is skipped
    because the table already carries it, which is what makes serving
    thousands of micro-batches per epoch off one table cheap.

    Endpoint liveness is validated like the batch entry point (a level-0
    endpoint raises) — service callers pre-filter those requests into
    rejections rather than letting one poison a whole batch.
    """
    lv, src, dst = _normalize_batch(topo, levels, sources, dests)
    if src.shape[0] != 1:
        raise ValueError(
            f"route_with_table serves one epoch at a time; got "
            f"{src.shape[0]} trial rows"
        )
    pn_flat = None
    if packed is not None:
        pn_flat = np.ascontiguousarray(packed, dtype=np.int64).reshape(-1)
        if pn_flat.shape[0] != topo.num_nodes:
            raise ValueError(
                f"packed words must be ({topo.num_nodes},), got "
                f"{np.asarray(packed).shape}"
            )
    hamming, status, condition, first_dim, hops, paths = \
        _route_batch_vectorized(topo, lv, src, dst, tie_break,
                                return_paths, pn_flat=pn_flat)
    result = BatchRouteResult(
        topo=topo, tie_break=tie_break, kernel="vectorized",
        sources=src, dests=dst, hamming=hamming, status=status,
        condition=condition, first_dim=first_dim, hops=hops, paths=paths,
    )
    record_routing_batch(result)
    return result
