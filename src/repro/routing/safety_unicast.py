"""The paper's unicasting algorithm (Section 3.2).

Source rule — with ``H = H(s, d)`` and ``N = s XOR d``:

* **C1**: ``S(s) >= H``, or
* **C2**: some preferred neighbor has level ``>= H - 1``
  → *optimal unicasting*: forward to the preferred neighbor with the
  highest safety level; the resulting path has length exactly ``H``.
* **C3** (only if C1 and C2 fail): some spare neighbor has level
  ``>= H + 1`` → *suboptimal unicasting*: forward to the spare neighbor
  with the highest level; length exactly ``H + 2``.
* otherwise → **failure detected at the source**; the message is never
  injected.  (Too many faults nearby, or the destination lies in another
  part of a disconnected cube.)

Intermediate rule: forward to the preferred neighbor with the highest
safety level, until the navigation vector is zero.

This module implements the algorithm as a deterministic walk over a
precomputed :class:`~repro.safety.levels.SafetyLevels` assignment — the
node-local information used at each step is exactly (own level, neighbors'
levels, navigation vector), so the walk is faithful to the distributed
protocol (see :mod:`repro.routing.distributed` for the on-simulator
version, cross-validated in tests).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..core.fault_models import RngLike, as_rng
from ..obs.instruments import record_route_attempt
from ..safety.levels import SafetyLevels
from . import navigation as nav
from .result import RouteResult, RouteStatus, SourceCondition

__all__ = ["check_feasibility", "route_unicast", "Feasibility"]

ROUTER_NAME = "safety-level"


@dataclass(frozen=True)
class Feasibility:
    """Outcome of the source-side feasibility tests."""

    condition: SourceCondition
    #: Dimension of the first hop the source rule selects (None on failure).
    first_dim: Optional[int]

    @property
    def feasible(self) -> bool:
        return self.condition is not SourceCondition.NONE

    @property
    def optimal_expected(self) -> bool:
        return self.condition in (SourceCondition.C1, SourceCondition.C2)


def check_feasibility(
    sl: SafetyLevels,
    source: int,
    dest: int,
    tie_break: nav.TieBreak = "lowest-dim",
    rng: RngLike = None,
) -> Feasibility:
    """Run the paper's C1/C2/C3 tests at the source.

    Uses only information available at the source node: its own level, its
    neighbors' levels, and ``H(s, d)``.

    **Draw order** (``tie_break="random"``): with ``H > 0`` this function
    consumes *exactly one* draw from ``rng`` for the preferred-neighbor
    pick (:func:`~repro.routing.navigation.pick_extreme` draws even when a
    single candidate tops the list), plus *one more* for the spare pick
    if and only if both C1 and C2 fail and a spare dimension exists
    (``H < n``).  ``H == 0`` draws nothing.  A caller that shares one
    generator between an explicit feasibility check and the subsequent
    walk must hand the resulting :class:`Feasibility` to
    :func:`route_unicast` via its ``feasibility`` parameter — the router
    then skips its internal re-check, so the shared generator advances
    exactly as it would for a single ``route_unicast`` call.
    """
    topo = sl.topo
    topo.validate_node(source)
    topo.validate_node(dest)
    gen = as_rng(rng) if tie_break == "random" else None
    n = topo.dimension
    vector = nav.initial_vector(source, dest)
    h = vector.bit_count()
    if h == 0:
        return Feasibility(condition=SourceCondition.C1, first_dim=None)

    preferred = [
        (dim, sl.level(topo.neighbor_along(source, dim)))
        for dim in nav.preferred_dims(vector, n)
    ]

    # C1: own level covers the distance; C2: a preferred neighbor is at
    # least (H-1)-safe.  Both route through the max-level preferred
    # neighbor (under C1 that neighbor is guaranteed >= H-1 by the
    # staircase property of Definition 1).
    best_pref = nav.pick_extreme(preferred, tie_break, gen)
    assert best_pref is not None  # h > 0 implies preferred dims exist
    if sl.level(source) >= h or best_pref[1] >= h - 1:
        condition = (
            SourceCondition.C1 if sl.level(source) >= h else SourceCondition.C2
        )
        return Feasibility(condition=condition, first_dim=best_pref[0])

    # C3: a spare neighbor at least (H+1)-safe gives the +2 detour route.
    spare = [
        (dim, sl.level(topo.neighbor_along(source, dim)))
        for dim in nav.spare_dims(vector, n)
    ]
    best_spare = nav.pick_extreme(spare, tie_break, gen)
    if best_spare is not None and best_spare[1] >= h + 1:
        return Feasibility(condition=SourceCondition.C3,
                           first_dim=best_spare[0])

    return Feasibility(condition=SourceCondition.NONE, first_dim=None)


def route_unicast(
    sl: SafetyLevels,
    source: int,
    dest: int,
    tie_break: nav.TieBreak = "lowest-dim",
    rng: RngLike = None,
    feasibility: Optional[Feasibility] = None,
) -> RouteResult:
    """Route one unicast with the safety-level algorithm.

    Raises ``ValueError`` for a faulty source or destination (the paper
    assumes both ends are alive; a faulty destination is detectable only at
    delivery, which the simulator-level tests exercise separately).

    ``feasibility`` lets a caller that already ran
    :func:`check_feasibility` hand over its result instead of having the
    router repeat the source tests.  Beyond saving the recomputation, this
    is what keeps a *shared* ``tie_break="random"`` generator honest: the
    source tests draw from ``rng`` (see the draw-order note on
    :func:`check_feasibility`), so re-running them inside the router would
    advance the generator twice and desynchronize it from a plain
    single-call ``route_unicast``.  With the precomputed feasibility
    passed in, the check + route pair consumes draw-for-draw the same
    stream as the single call.  The caller must have computed it for the
    same ``(sl, source, dest, tie_break)``; for ``source == dest`` it is
    ignored (the trivial route never consults the source rule).

    Every attempt reports through :mod:`repro.obs` (outcome, source
    condition, hops, detour) when observability is enabled; the hook is a
    single branch otherwise.
    """
    result = _route_unicast(sl, source, dest, tie_break, rng, feasibility)
    record_route_attempt(result)
    return result


def _route_unicast(
    sl: SafetyLevels,
    source: int,
    dest: int,
    tie_break: nav.TieBreak = "lowest-dim",
    rng: RngLike = None,
    feasibility: Optional[Feasibility] = None,
) -> RouteResult:
    """The uninstrumented walk (see :func:`route_unicast`)."""
    topo, faults = sl.topo, sl.faults
    topo.validate_node(source)
    topo.validate_node(dest)
    if faults.is_node_faulty(source):
        raise ValueError(f"source {topo.format_node(source)} is faulty")
    if faults.is_node_faulty(dest):
        raise ValueError(f"destination {topo.format_node(dest)} is faulty")
    gen = as_rng(rng) if tie_break == "random" else None
    n = topo.dimension
    h = topo.distance(source, dest)

    if source == dest:
        return RouteResult(
            router=ROUTER_NAME, source=source, dest=dest, hamming=0,
            status=RouteStatus.DELIVERED, path=[source],
            condition=SourceCondition.C1,
        )

    feas = (feasibility if feasibility is not None
            else check_feasibility(sl, source, dest, tie_break, gen))
    if not feas.feasible:
        return RouteResult(
            router=ROUTER_NAME, source=source, dest=dest, hamming=h,
            status=RouteStatus.ABORTED_AT_SOURCE,
            detail="C1, C2 and C3 all fail at the source",
        )

    # First hop chosen by the source rule; thereafter the intermediate rule.
    assert feas.first_dim is not None
    vector = nav.cross(nav.initial_vector(source, dest), feas.first_dim)
    current = topo.neighbor_along(source, feas.first_dim)
    path = [source, current]

    while not nav.is_complete(vector):
        candidates = [
            (dim, sl.level(topo.neighbor_along(current, dim)))
            for dim in nav.preferred_dims(vector, n)
        ]
        choice = nav.pick_extreme(candidates, tie_break, gen)
        assert choice is not None  # vector != 0 implies preferred dims
        dim, level = choice
        nxt = topo.neighbor_along(current, dim)
        if level == 0 and nxt != dest:
            # All remaining preferred neighbors are faulty.  Cannot happen
            # when a source condition held (Theorem 3), but the walk stays
            # defensive so experiments can probe beyond the guarantees.
            return RouteResult(
                router=ROUTER_NAME, source=source, dest=dest, hamming=h,
                status=RouteStatus.STUCK, path=path,
                condition=feas.condition,
                detail=f"all preferred neighbors of "
                       f"{topo.format_node(current)} are faulty",
            )
        vector = nav.cross(vector, dim)
        current = nxt
        path.append(current)

    return RouteResult(
        router=ROUTER_NAME, source=source, dest=dest, hamming=h,
        status=RouteStatus.DELIVERED, path=path, condition=feas.condition,
    )
