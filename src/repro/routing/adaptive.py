"""Unicasting while faults occur mid-flight (Section 2.2, demand-driven).

The paper's dynamic story: "in case of occurrence of a new faulty node
that affects a unicast, this unicast might either be aborted or be
re-routed from the current node after all the safety levels are
stabilized."  This module makes that behaviour executable:

:func:`route_unicast_adaptive` walks a unicast over a
:class:`~repro.core.fault_models.FaultSchedule`.  Each hop advances the
clock by one tick; the fault set in force is re-read every tick.  The
current message holder

* routes by the *stabilized* safety levels of the instantaneous fault set
  (state-change-driven GS is assumed to finish between hops — its
  stabilization is bounded by n−1 fast rounds),
* and on discovering that its chosen next hop just died, **re-routes from
  itself**: it re-runs the full source rule (C1/C2/C3) with itself as the
  origin, exactly as the paper prescribes.

Outcomes therefore include mid-route aborts (re-route found no admissible
continuation) in addition to the static algorithm's vocabulary.  A hop
into a node that fails *while the message is on the wire* is still lost —
no information could have prevented it; the tests inject exactly this.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from ..core.fault_models import FaultSchedule
from ..core.hypercube import Hypercube
from ..safety.levels import SafetyLevels, compute_safety_levels
from . import navigation as nav
from .result import RouteResult, RouteStatus, SourceCondition
from .safety_unicast import check_feasibility

__all__ = ["AdaptiveRouteOutcome", "route_unicast_adaptive"]


@dataclass(frozen=True)
class AdaptiveRouteOutcome:
    """A :class:`RouteResult` plus the dynamic-routing event log."""

    result: RouteResult
    #: Ticks at which the message holder had to re-route (chosen hop died).
    reroutes: List[int] = field(default_factory=list)
    #: Tick at which the walk ended.
    end_time: int = 0


def _levels_at(topo: Hypercube, schedule: FaultSchedule,
               time: int) -> SafetyLevels:
    faults = schedule.at(time)
    levels = compute_safety_levels(topo, faults)
    levels.setflags(write=False)
    return SafetyLevels(topo=topo, faults=faults, levels=levels)


def route_unicast_adaptive(
    topo: Hypercube,
    schedule: FaultSchedule,
    source: int,
    dest: int,
    start_time: int = 0,
    max_reroutes: Optional[int] = None,
) -> AdaptiveRouteOutcome:
    """Walk one unicast across a changing fault landscape."""
    topo.validate_node(source)
    topo.validate_node(dest)
    if schedule.at(start_time).is_node_faulty(source):
        raise ValueError(f"source {topo.format_node(source)} is faulty at "
                         f"t={start_time}")
    n = topo.dimension
    h0 = topo.distance(source, dest)
    limit = 3 * n + 8 if max_reroutes is None else max_reroutes
    reroutes: List[int] = []

    time = start_time
    sl = _levels_at(topo, schedule, time)
    feas = check_feasibility(sl, source, dest)
    if not feas.feasible:
        return AdaptiveRouteOutcome(
            result=RouteResult(
                router="safety-level-adaptive", source=source, dest=dest,
                hamming=h0, status=RouteStatus.ABORTED_AT_SOURCE,
                detail="infeasible at injection time",
            ),
            end_time=time,
        )

    current = source
    path = [source]
    vector = nav.initial_vector(source, dest)
    condition = feas.condition
    # The first hop follows the source rule; afterwards the intermediate
    # rule, re-entering the source rule only on re-route.
    pending_dim: Optional[int] = feas.first_dim

    while True:
        if nav.is_complete(vector):
            return AdaptiveRouteOutcome(
                result=RouteResult(
                    router="safety-level-adaptive", source=source,
                    dest=dest, hamming=h0, status=RouteStatus.DELIVERED,
                    path=path, condition=condition,
                ),
                reroutes=reroutes, end_time=time,
            )
        if len(reroutes) > limit:
            return AdaptiveRouteOutcome(
                result=RouteResult(
                    router="safety-level-adaptive", source=source,
                    dest=dest, hamming=h0, status=RouteStatus.HOP_LIMIT,
                    path=path, condition=condition,
                    detail="re-route budget exhausted",
                ),
                reroutes=reroutes, end_time=time,
            )

        faults_now = schedule.at(time)
        sl = _levels_at(topo, schedule, time)
        if pending_dim is None:
            candidates = [
                (dim, sl.level(topo.neighbor_along(current, dim)))
                for dim in nav.preferred_dims(vector, n)
            ]
            choice = nav.pick_extreme(candidates)
            assert choice is not None
            dim = choice[0]
        else:
            dim = pending_dim
            pending_dim = None
        nxt = topo.neighbor_along(current, dim)

        if faults_now.is_node_faulty(nxt):
            # Adjacent failure discovered before transmission: re-route
            # from here (the paper's "re-routed from the current node").
            reroutes.append(time)
            feas = check_feasibility(sl, current, dest)
            if not feas.feasible:
                return AdaptiveRouteOutcome(
                    result=RouteResult(
                        router="safety-level-adaptive", source=source,
                        dest=dest, hamming=h0, status=RouteStatus.STUCK,
                        path=path, condition=condition,
                        detail=f"re-route from "
                               f"{topo.format_node(current)} infeasible",
                    ),
                    reroutes=reroutes, end_time=time,
                )
            condition = feas.condition
            vector = nav.initial_vector(current, dest)
            pending_dim = feas.first_dim
            # Re-routing consumes a tick of local work.
            time += 1
            continue

        # Transmit: one tick on the wire; the neighbor may die meanwhile.
        time += 1
        if schedule.at(time).is_node_faulty(nxt):
            return AdaptiveRouteOutcome(
                result=RouteResult(
                    router="safety-level-adaptive", source=source,
                    dest=dest, hamming=h0, status=RouteStatus.STUCK,
                    path=path, condition=condition,
                    detail=f"{topo.format_node(nxt)} failed while the "
                           "message was in flight",
                ),
                reroutes=reroutes, end_time=time,
            )
        vector = nav.cross(vector, dim)
        current = nxt
        path.append(current)
