"""Unicasting in cubes with faulty links and nodes (Section 4.1).

The algorithm is the Section 3.2 unicast, run over the two-view EGS
assignment:

* the source tests C1 against its *own* (private) level — an ``N2`` source
  considers itself healthy;
* C2/C3 and every intermediate decision use the *public* levels, under
  which ``N2`` nodes read 0 — so healthy-looking routes never rely on a
  node that might sit behind a broken link;
* footnote 3: an ``N2`` node is avoided as an intermediate hop (its public
  level 0 loses every max-level comparison), yet a message whose navigation
  vector ends at it is still delivered, provided the final link is healthy.

The guarantee is correspondingly weakened exactly as the paper states: a
``k``-safe node reaches any node within ``k`` distance *except* the far
ends of its own faulty links; destinations in ``N2`` may need the final
hop to be checked at delivery time, which the walk below does, reporting
``STUCK`` if the last link happens to be the faulty one.
"""

from __future__ import annotations

from ..core.fault_models import RngLike, as_rng
from ..safety.link_faults import ExtendedSafetyLevels
from . import navigation as nav
from .result import RouteResult, RouteStatus, SourceCondition

__all__ = ["route_unicast_with_links"]

ROUTER_NAME = "safety-level-egs"


def route_unicast_with_links(
    ext: ExtendedSafetyLevels,
    source: int,
    dest: int,
    tie_break: nav.TieBreak = "lowest-dim",
    rng: RngLike = None,
) -> RouteResult:
    """Safety-level unicast over an EGS assignment."""
    topo, faults = ext.topo, ext.faults
    topo.validate_node(source)
    topo.validate_node(dest)
    if faults.is_node_faulty(source):
        raise ValueError(f"source {topo.format_node(source)} is faulty")
    if faults.is_node_faulty(dest):
        raise ValueError(f"destination {topo.format_node(dest)} is faulty")
    gen = as_rng(rng) if tie_break == "random" else None
    n = topo.dimension
    h = topo.distance(source, dest)

    if source == dest:
        return RouteResult(router=ROUTER_NAME, source=source, dest=dest,
                           hamming=0, status=RouteStatus.DELIVERED,
                           path=[source], condition=SourceCondition.C1)

    # Direct delivery to an adjacent destination over a healthy link is
    # always possible regardless of levels (an N2 destination would
    # otherwise look faulty and fail C2 spuriously).
    if h == 1 and not faults.is_link_faulty(source, dest):
        return RouteResult(router=ROUTER_NAME, source=source, dest=dest,
                           hamming=1, status=RouteStatus.DELIVERED,
                           path=[source, dest], condition=SourceCondition.C1)

    def seen_level(node: int) -> int:
        return ext.level_seen_by_neighbor(node)

    vector = nav.initial_vector(source, dest)
    preferred = [
        (dim, seen_level(topo.neighbor_along(source, dim)))
        for dim in nav.preferred_dims(vector, n)
    ]
    best_pref = nav.pick_extreme(preferred, tie_break, gen)
    assert best_pref is not None

    condition = SourceCondition.NONE
    first_dim = None
    if ext.own_level(source) >= h:
        condition, first_dim = SourceCondition.C1, best_pref[0]
    elif best_pref[1] >= h - 1:
        condition, first_dim = SourceCondition.C2, best_pref[0]
    else:
        spare = [
            (dim, seen_level(topo.neighbor_along(source, dim)))
            for dim in nav.spare_dims(vector, n)
        ]
        best_spare = nav.pick_extreme(spare, tie_break, gen)
        if best_spare is not None and best_spare[1] >= h + 1:
            condition, first_dim = SourceCondition.C3, best_spare[0]

    if condition is SourceCondition.NONE:
        return RouteResult(
            router=ROUTER_NAME, source=source, dest=dest, hamming=h,
            status=RouteStatus.ABORTED_AT_SOURCE,
            detail="C1, C2 and C3 all fail at the source (EGS view)",
        )

    assert first_dim is not None
    vector = nav.cross(vector, first_dim)
    current = topo.neighbor_along(source, first_dim)
    path = [source, current]
    if faults.is_link_faulty(source, current):
        return RouteResult(
            router=ROUTER_NAME, source=source, dest=dest, hamming=h,
            status=RouteStatus.STUCK, path=[source], condition=condition,
            detail="first hop crosses a faulty link",
        )

    while not nav.is_complete(vector):
        candidates = [
            (dim, seen_level(topo.neighbor_along(current, dim)))
            for dim in nav.preferred_dims(vector, n)
        ]
        choice = nav.pick_extreme(candidates, tie_break, gen)
        assert choice is not None
        dim, level = choice
        nxt = topo.neighbor_along(current, dim)
        if level == 0 and nxt != dest:
            return RouteResult(
                router=ROUTER_NAME, source=source, dest=dest, hamming=h,
                status=RouteStatus.STUCK, path=path, condition=condition,
                detail=f"all preferred neighbors of "
                       f"{topo.format_node(current)} look faulty",
            )
        if faults.is_node_faulty(nxt) or faults.is_link_faulty(current, nxt):
            return RouteResult(
                router=ROUTER_NAME, source=source, dest=dest, hamming=h,
                status=RouteStatus.STUCK, path=path, condition=condition,
                detail=f"hop {topo.format_node(current)} -> "
                       f"{topo.format_node(nxt)} blocked by a fault",
            )
        vector = nav.cross(vector, dim)
        current = nxt
        path.append(current)

    return RouteResult(
        router=ROUTER_NAME, source=source, dest=dest, hamming=h,
        status=RouteStatus.DELIVERED, path=path, condition=condition,
    )
