"""The generalized-hypercube unicast as a distributed protocol.

Fidelity twin of :func:`repro.routing.generalized.route_gh_unicast` for the
primary (no-lateral) algorithm: node processes carry the Definition-4
levels of their neighbors and forward the message by jumping, within some
still-differing dimension, straight to the destination's coordinate —
picking the dimension whose target neighbor has the highest level.

Unlike the binary protocol, the navigation state is the destination id
itself (a GH "navigation vector" would need one mixed-radix digit per
dimension anyway, the same information).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..safety.generalized import GhSafetyLevels
from ..simcore.message import Message
from ..simcore.network import Network
from ..simcore.node import NodeProcess
from .generalized import route_gh_unicast
from .result import RouteResult, RouteStatus

__all__ = ["route_gh_unicast_distributed"]

KIND = "unicast-gh"

ROUTER_NAME = "safety-level-gh-distributed"


class _GhUnicastProcess(NodeProcess):
    """Forwards GH unicast messages by highest-level target neighbor."""

    __slots__ = ("gh", "level_of_neighbor", "received")

    def __init__(self, gh, level_of_neighbor: Dict[int, int]) -> None:
        super().__init__()
        self.gh = gh
        self.level_of_neighbor = level_of_neighbor
        self.received: List[Tuple[int, ...]] = []

    def forward(self, dest: int, path: Tuple[int, ...]) -> None:
        if self.node_id == dest:
            self.received.append(path)
            return
        candidates = [
            (self.gh.step_toward(self.node_id, dest, dim))
            for dim in self.gh.differing_dimensions(self.node_id, dest)
        ]
        scored = sorted(
            ((self.level_of_neighbor[v], -v) for v in candidates),
            reverse=True,
        )
        level, neg_node = scored[0]
        nxt = -neg_node
        remaining = self.gh.distance(self.node_id, dest)
        if level == 0 and remaining > 1:
            self.trace("unicast-stuck", path)
            return
        self.send(nxt, KIND, (dest, path + (nxt,)), payload_units=1)

    def on_message(self, msg: Message) -> None:
        dest, path = msg.payload
        self.forward(dest, path)


def route_gh_unicast_distributed(
    ghsl: GhSafetyLevels,
    source: int,
    dest: int,
) -> Tuple[RouteResult, Network]:
    """Run one GH unicast end-to-end on the simulator.

    The source-side C1/C2/C3 decision is taken from the walk (it uses only
    source-local information); the transport then runs distributedly.
    """
    gh, faults = ghsl.gh, ghsl.faults
    walk = route_gh_unicast(ghsl, source, dest)

    def factory(node: int) -> _GhUnicastProcess:
        return _GhUnicastProcess(
            gh, {v: ghsl.level(v) for v in gh.neighbors(node)})

    net = Network(gh, faults, factory)
    net.start()
    if walk.status is RouteStatus.ABORTED_AT_SOURCE:
        return RouteResult(
            router=ROUTER_NAME, source=source, dest=dest,
            hamming=walk.hamming, status=walk.status, detail=walk.detail,
        ), net
    if source == dest:
        return RouteResult(
            router=ROUTER_NAME, source=source, dest=dest, hamming=0,
            status=RouteStatus.DELIVERED, path=[source],
            condition=walk.condition,
        ), net

    first_hop = walk.path[1]
    src_proc = net.process(source)
    assert isinstance(src_proc, _GhUnicastProcess)
    src_proc.send(first_hop, KIND, (dest, (source, first_hop)),
                  payload_units=1)
    net.run()

    dst_proc = net.process(dest)
    assert isinstance(dst_proc, _GhUnicastProcess)
    if dst_proc.received:
        result = RouteResult(
            router=ROUTER_NAME, source=source, dest=dest,
            hamming=walk.hamming, status=RouteStatus.DELIVERED,
            path=list(dst_proc.received[-1]), condition=walk.condition,
        )
    else:
        result = RouteResult(
            router=ROUTER_NAME, source=source, dest=dest,
            hamming=walk.hamming, status=RouteStatus.STUCK,
            path=[source], condition=walk.condition,
            detail="message lost or held mid-network",
        )
    return result, net
