"""Multicast extension: one-to-many delivery built on safety-level unicast.

The paper treats unicast; its companion line of work extends safety levels
to one-to-many communication.  This module provides the natural
construction on top of the Section 3.2 algorithm, as a measured extension
(experiment E18):

* :func:`multicast_separate` — one independent unicast per destination;
  the correctness baseline, paying for every path in full.
* :func:`multicast_greedy_tree` — destinations are attached nearest-first
  to the *growing delivery tree*: each new destination is routed from the
  tree node closest to it (among those whose safety conditions admit the
  route), so common prefixes are paid for once.

Both inherit the unicast guarantees per branch: every branch is optimal or
``H+2`` *from its attach point*, and infeasible branches are detected at
the attach point rather than lost.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, List, Sequence, Set, Tuple

from ..core.faults import normalize_link
from ..results import base_record
from ..safety.levels import SafetyLevels
from .result import RouteResult, RouteStatus
from .safety_unicast import check_feasibility, route_unicast

__all__ = ["MulticastResult", "multicast_separate", "multicast_greedy_tree"]


@dataclass(frozen=True)
class MulticastResult:
    """Outcome of one multicast."""

    strategy: str
    source: int
    requested: FrozenSet[int]
    covered: FrozenSet[int]
    #: Destinations whose delivery was refused (detected, not lost).
    infeasible: FrozenSet[int]
    #: Distinct links carrying the payload (the message cost of a
    #: store-and-forward multicast).
    tree_links: FrozenSet[Tuple[int, int]]
    #: Per-destination unicast results, keyed by destination.
    branches: Dict[int, RouteResult] = field(default_factory=dict)

    @property
    def messages(self) -> int:
        return len(self.tree_links)

    @property
    def complete(self) -> bool:
        return self.covered == self.requested

    # -- the shared result protocol (repro.results.ResultLike) --------------

    @property
    def status(self) -> str:
        """``"complete"``, ``"partial"`` (some branches refused), or
        ``"failed"`` (no destination reached)."""
        if self.complete:
            return "complete"
        return "partial" if self.covered else "failed"

    def to_dict(self) -> Dict[str, Any]:
        return base_record(
            self,
            strategy=self.strategy,
            source=self.source,
            requested=len(self.requested),
            covered=len(self.covered),
            infeasible=sorted(self.infeasible),
            messages=self.messages,
            complete=self.complete,
        )

    def summary(self) -> str:
        return (
            f"multicast[{self.strategy}]: {len(self.covered)}/"
            f"{len(self.requested)} destinations covered, "
            f"{self.messages} tree links ({self.status})"
        )


def _check_endpoints(sl: SafetyLevels, source: int,
                     dests: Sequence[int]) -> None:
    topo, faults = sl.topo, sl.faults
    topo.validate_node(source)
    if faults.is_node_faulty(source):
        raise ValueError(f"source {topo.format_node(source)} is faulty")
    for d in dests:
        topo.validate_node(d)
        if faults.is_node_faulty(d):
            raise ValueError(
                f"destination {topo.format_node(d)} is faulty")


def multicast_separate(
    sl: SafetyLevels, source: int, dests: Sequence[int]
) -> MulticastResult:
    """One unicast per destination; links shared by chance only."""
    _check_endpoints(sl, source, dests)
    covered: Set[int] = set()
    infeasible: Set[int] = set()
    links: Set[Tuple[int, int]] = set()
    branches: Dict[int, RouteResult] = {}
    for d in dests:
        res = route_unicast(sl, source, d)
        branches[d] = res
        if res.status is RouteStatus.DELIVERED:
            covered.add(d)
            links.update(normalize_link(u, v)
                         for u, v in zip(res.path, res.path[1:]))
        else:
            infeasible.add(d)
    return MulticastResult(
        strategy="separate-unicasts", source=source,
        requested=frozenset(dests), covered=frozenset(covered),
        infeasible=frozenset(infeasible), tree_links=frozenset(links),
        branches=branches,
    )


def multicast_greedy_tree(
    sl: SafetyLevels, source: int, dests: Sequence[int]
) -> MulticastResult:
    """Nearest-first tree growth with safety-checked attach points.

    For each destination (closest to the source first), every node already
    in the tree is a candidate attach point; the closest one whose
    C1/C2/C3 test admits the residual unicast wins (ties to the smaller
    node id).  The branch is routed with the ordinary algorithm, and its
    nodes join the tree.
    """
    topo = sl.topo
    _check_endpoints(sl, source, dests)
    tree_nodes: Set[int] = {source}
    links: Set[Tuple[int, int]] = set()
    covered: Set[int] = set()
    infeasible: Set[int] = set()
    branches: Dict[int, RouteResult] = {}

    for d in sorted(set(dests), key=lambda v: (topo.distance(source, v), v)):
        if d in tree_nodes:
            covered.add(d)
            branches[d] = RouteResult(
                router="multicast-tree", source=d, dest=d, hamming=0,
                status=RouteStatus.DELIVERED, path=[d],
            )
            continue
        candidates = sorted(
            tree_nodes, key=lambda a: (topo.distance(a, d), a))
        attach = None
        for a in candidates:
            if check_feasibility(sl, a, d).feasible:
                attach = a
                break
        if attach is None:
            infeasible.add(d)
            branches[d] = RouteResult(
                router="multicast-tree", source=source, dest=d,
                hamming=topo.distance(source, d),
                status=RouteStatus.ABORTED_AT_SOURCE,
                detail="no tree node admits a route",
            )
            continue
        res = route_unicast(sl, attach, d)
        branches[d] = res
        if res.status is not RouteStatus.DELIVERED:
            # Feasibility admitted it, so this cannot happen (Theorem 3);
            # stay defensive for experiment probing beyond the guarantees.
            infeasible.add(d)
            continue
        covered.add(d)
        tree_nodes.update(res.path)
        links.update(normalize_link(u, v)
                     for u, v in zip(res.path, res.path[1:]))

    return MulticastResult(
        strategy="greedy-tree", source=source, requested=frozenset(dests),
        covered=frozenset(covered), infeasible=frozenset(infeasible),
        tree_links=frozenset(links), branches=branches,
    )
