"""The Section 4.1 unicast as a distributed protocol (EGS levels).

Fidelity twin of :func:`repro.routing.link_fault_routing.
route_unicast_with_links`: node processes hold their EGS state (own
private level plus neighbors' *public* levels) and forward on navigation
vectors; the network drops traffic at faulty links exactly as the model
prescribes.  Tests assert the walk and the protocol agree path-for-path.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..core.fault_models import RngLike, as_rng
from ..safety.link_faults import ExtendedSafetyLevels
from ..simcore.message import Message
from ..simcore.network import Network
from ..simcore.node import NodeProcess
from . import navigation as nav
from .link_fault_routing import route_unicast_with_links
from .result import RouteResult, RouteStatus

__all__ = ["route_unicast_with_links_distributed"]

KIND = "unicast-egs"

ROUTER_NAME = "safety-level-egs-distributed"


class _EgsUnicastProcess(NodeProcess):
    """Forwards unicast messages using public EGS levels."""

    __slots__ = ("n", "public_of_neighbor", "received")

    def __init__(self, n: int, public_of_neighbor: Dict[int, int]) -> None:
        super().__init__()
        self.n = n
        self.public_of_neighbor = public_of_neighbor
        self.received: list = []

    def forward(self, vector: int, path: Tuple[int, ...]) -> None:
        if nav.is_complete(vector):
            self.received.append(path)
            return
        candidates = [
            (dim, self.public_of_neighbor[self.node_id ^ (1 << dim)])
            for dim in nav.preferred_dims(vector, self.n)
        ]
        choice = nav.pick_extreme(candidates)
        assert choice is not None
        dim, level = choice
        nxt = self.node_id ^ (1 << dim)
        remaining = bin(vector).count("1")
        if level == 0 and remaining > 1:
            # All preferred neighbors look faulty: hold the message (the
            # walk reports STUCK here; the protocol simply stops sending).
            self.trace("unicast-stuck", path)
            return
        self.send(nxt, KIND, (nav.cross(vector, dim), path + (nxt,)),
                  payload_units=1)

    def on_message(self, msg: Message) -> None:
        vector, path = msg.payload
        self.forward(vector, path)


def route_unicast_with_links_distributed(
    ext: ExtendedSafetyLevels,
    source: int,
    dest: int,
    rng: RngLike = None,
) -> Tuple[RouteResult, Network]:
    """Run the Section 4.1 unicast on the simulator.

    The source decision (C1 on its private level, C2/C3 on public levels,
    the adjacent-destination special case) is taken from the walk
    implementation, which uses only source-local information; the network
    then carries the message for real, dropping it at any faulty link.
    """
    topo, faults = ext.topo, ext.faults
    # Delegate the source-side decision (and full expected outcome) to the
    # walk, then replay the transport distributedly.
    walk = route_unicast_with_links(ext, source, dest, rng=rng)

    def factory(node: int) -> _EgsUnicastProcess:
        return _EgsUnicastProcess(
            topo.dimension,
            {v: ext.level_seen_by_neighbor(v)
             for v in topo.neighbors(node)},
        )

    net = Network(topo, faults, factory)
    net.start()
    if walk.status is RouteStatus.ABORTED_AT_SOURCE:
        return RouteResult(
            router=ROUTER_NAME, source=source, dest=dest,
            hamming=walk.hamming, status=walk.status, detail=walk.detail,
        ), net
    if source == dest:
        return RouteResult(
            router=ROUTER_NAME, source=source, dest=dest, hamming=0,
            status=RouteStatus.DELIVERED, path=[source],
            condition=walk.condition,
        ), net

    first_hop = walk.path[1] if len(walk.path) > 1 else None
    assert first_hop is not None
    vector = nav.cross(nav.initial_vector(source, dest),
                       (source ^ first_hop).bit_length() - 1)
    src_proc = net.process(source)
    assert isinstance(src_proc, _EgsUnicastProcess)
    src_proc.send(first_hop, KIND, (vector, (source, first_hop)),
                  payload_units=1)
    net.run()

    dst_proc = net.process(dest)
    assert isinstance(dst_proc, _EgsUnicastProcess)
    if dst_proc.received:
        result = RouteResult(
            router=ROUTER_NAME, source=source, dest=dest,
            hamming=walk.hamming, status=RouteStatus.DELIVERED,
            path=list(dst_proc.received[-1]), condition=walk.condition,
        )
    else:
        result = RouteResult(
            router=ROUTER_NAME, source=source, dest=dest,
            hamming=walk.hamming, status=RouteStatus.STUCK,
            path=[source], condition=walk.condition,
            detail="message lost or held mid-network",
        )
    return result, net
