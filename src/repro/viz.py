"""ASCII rendering of small cubes: the paper's figures as text diagrams.

``Q3`` and ``Q4`` are drawn in the classic cube / tesseract projection the
paper's figures use, with per-node annotations (safety levels, fault
marks, route membership).  Generalized hypercubes render as per-plane
grids.  Everything is plain text so diagrams drop into terminals, test
output, and the regenerated artifacts.

Example (Fig. 1's faulty four-cube)::

    from repro.instances import fig1_instance
    from repro.safety import SafetyLevels
    from repro.viz import render_cube

    topo, faults = fig1_instance()
    print(render_cube(topo, SafetyLevels.compute(topo, faults)))
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

from .core.faults import FaultSet
from .core.generalized import GeneralizedHypercube
from .core.hypercube import Hypercube
from .safety.levels import SafetyLevels

__all__ = ["node_label", "render_cube", "render_gh", "render_route"]

# Node coordinates (row, col) for the Q3 cube drawing; the outer square is
# bit2=1, inner square bit2=0 shifted by an offset.
_Q3_LAYOUT: Dict[int, tuple] = {
    0b000: (8, 0), 0b001: (8, 24),
    0b010: (0, 0), 0b011: (0, 24),
    0b100: (12, 8), 0b101: (12, 32),
    0b110: (4, 8), 0b111: (4, 32),
}


def node_label(
    node: int,
    topo,
    faults: Optional[FaultSet] = None,
    levels: Optional[SafetyLevels] = None,
) -> str:
    """Annotated node label: address, level, fault mark.

    ``'0110*'`` marks a faulty node; ``'0101:2'`` shows a safety level.
    """
    text = topo.format_node(node)
    if faults is not None and faults.is_node_faulty(node):
        return text + "*"
    if levels is not None:
        return f"{text}:{levels.level(node)}"
    return text


def _paint(canvas: List[List[str]], row: int, col: int, text: str) -> None:
    for i, ch in enumerate(text):
        if 0 <= row < len(canvas) and 0 <= col + i < len(canvas[0]):
            canvas[row][col + i] = ch


def _edge_chars(canvas, r1, c1, r2, c2):
    """Draw a straight or diagonal edge between two label anchors."""
    if r1 == r2:
        lo, hi = sorted((c1, c2))
        for c in range(lo + 1, hi):
            if canvas[r1][c] == " ":
                canvas[r1][c] = "-"
    elif c1 == c2:
        lo, hi = sorted((r1, r2))
        for r in range(lo + 1, hi):
            if canvas[r][c1] == " ":
                canvas[r][c1] = "|"
    else:
        steps = max(abs(r1 - r2), abs(c1 - c2))
        for k in range(1, steps):
            r = r1 + (r2 - r1) * k // steps
            c = c1 + (c2 - c1) * k // steps
            if canvas[r][c] == " ":
                canvas[r][c] = "\\" if (r2 - r1) * (c2 - c1) > 0 else "/"


def _render_q3(
    labeler: Callable[[int], str],
    col_offset: int = 0,
    canvas: Optional[List[List[str]]] = None,
) -> List[List[str]]:
    width = col_offset + 44
    if canvas is None:
        canvas = [[" "] * width for _ in range(14)]
    elif len(canvas[0]) < width:
        for row in canvas:
            row.extend(" " * (width - len(row)))
    anchors = {}
    for node, (r, c) in _Q3_LAYOUT.items():
        label = labeler(node)
        _paint(canvas, r, c + col_offset, label)
        anchors[node] = (r, c + col_offset + len(label) // 2)
    for u in _Q3_LAYOUT:
        for dim in range(3):
            v = u ^ (1 << dim)
            if u < v:
                (r1, c1), (r2, c2) = anchors[u], anchors[v]
                _edge_chars(canvas, r1, c1, r2, c2)
    return canvas


def render_cube(
    topo: Hypercube,
    levels: Optional[SafetyLevels] = None,
    faults: Optional[FaultSet] = None,
    highlight: Sequence[int] = (),
) -> str:
    """Draw a Q3 or Q4 with annotations.

    Q4 renders as two Q3 subcubes (bit 3 = 0 left, = 1 right) — the same
    projection the paper's Fig. 1 uses.  ``highlight`` nodes are wrapped
    in brackets (used for route display).
    """
    if topo.dimension not in (3, 4):
        raise ValueError("ASCII rendering supports Q3 and Q4 only")
    if faults is None and levels is not None:
        faults = levels.faults
    marked = set(highlight)

    def labeler_for(offset_bit: int) -> Callable[[int], str]:
        def labeler(sub_node: int) -> str:
            node = sub_node | offset_bit
            text = node_label(node, topo, faults, levels)
            return f"[{text}]" if node in marked else text

        return labeler

    if topo.dimension == 3:
        canvas = _render_q3(labeler_for(0))
        return "\n".join("".join(row).rstrip() for row in canvas).rstrip()

    canvas = _render_q3(labeler_for(0))
    canvas = _render_q3(labeler_for(8), col_offset=48, canvas=canvas)
    lines = ["bit3 = 0" + " " * 40 + "bit3 = 1", ""]
    lines += ["".join(row).rstrip() for row in canvas]
    lines.append("")
    lines.append("(dimension-3 links connect equal addresses across the "
                 "two subcubes; '*' marks faults)")
    return "\n".join(lines).rstrip()


def render_gh(
    gh: GeneralizedHypercube,
    levels=None,
    faults: Optional[FaultSet] = None,
) -> str:
    """Render a 3-dimensional GH as one grid per top-coordinate plane."""
    if gh.dimension != 3:
        raise ValueError("GH rendering supports 3-dimensional GHs only")
    m0, m1, m2 = gh.radices
    blocks: List[str] = []
    for a2 in range(m2):
        lines = [f"plane a2 = {a2}:"]
        for a1 in range(m1):
            cells = []
            for a0 in range(m0):
                node = gh.node_from_coords((a0, a1, a2))
                text = gh.format_node(node)
                if faults is not None and faults.is_node_faulty(node):
                    cells.append(f"{text}*  ")
                elif levels is not None:
                    cells.append(f"{text}:{int(levels.levels[node])} ")
                else:
                    cells.append(f"{text}   ")
            lines.append("   " + " ".join(cells))
        blocks.append("\n".join(lines))
    blocks.append("(rows are dimension-0 cliques; columns dimension-1; "
                  "planes dimension-2; '*' marks faults)")
    return "\n\n".join(blocks)


def render_route(
    topo: Hypercube,
    levels: SafetyLevels,
    path: Sequence[int],
) -> str:
    """Cube drawing with the route's nodes highlighted plus a legend."""
    picture = render_cube(topo, levels=levels, highlight=path)
    legend = " -> ".join(topo.format_node(v) for v in path)
    return picture + "\n\nroute: " + legend
