"""Command-line entry point: regenerate any paper table or figure.

Usage::

    python -m repro.cli list
    python -m repro.cli fig1
    python -m repro.cli fig2 --trials 500
    python -m repro.cli fig2 --jobs 4 --metrics-out run.jsonl
    python -m repro.cli stats run.jsonl
    python -m repro.cli all --quick
    python -m repro.cli serve --dim 8 --faults 20 --port 7429
    python -m repro.cli bench-service --quick

Every experiment is seeded; rerunning a command reproduces its output
bit-for-bit.  ``--quick`` shrinks trial counts for smoke runs.  ``--jobs``
fans Monte-Carlo trials out over worker processes (equivalent to setting
``REPRO_JOBS``); the sweep engine guarantees results do not depend on the
worker count.  ``--metrics-out PATH`` records the run's telemetry — a
provenance manifest, per-attempt routing outcomes, kernel batches, sweep
throughput and a final counter snapshot — as schema-versioned JSONL
(see :mod:`repro.obs`); ``stats PATH`` folds such a file back into the
run's headline numbers offline.

Experiments live in a declarative registry: each entry binds a name to a
description, a runner and its default trial counts, and every entry
shares the flags above.  ``list`` enumerates the registry.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
import warnings
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional

from . import analysis, obs
from .analysis.sweep import JOBS_ENV_VAR
from .routing.batch import KERNEL_ENV_VAR, KERNELS
from .safety.levels import LEVEL_KERNEL_ENV_VAR, LEVEL_KERNELS

__all__ = ["main", "RunContext", "Experiment", "REGISTRY", "EXPERIMENTS",
           "register"]


@dataclass(frozen=True)
class RunContext:
    """What a runner receives: the shared flags, with trials resolved.

    ``trials`` is the explicit ``--trials`` override if given, else the
    experiment's declared quick/full default (``None`` for experiments
    without a trial knob).
    """

    quick: bool = False
    trials: Optional[int] = None


@dataclass(frozen=True)
class Experiment:
    """One registry entry: name -> runner -> default trial counts."""

    name: str
    description: str
    runner: Callable[[RunContext], str]
    quick_trials: Optional[int] = None
    full_trials: Optional[int] = None

    def resolve_trials(self, quick: bool,
                       trials: Optional[int]) -> Optional[int]:
        if trials is not None:
            return trials
        return self.quick_trials if quick else self.full_trials

    def run(self, quick: bool = False, trials: Optional[int] = None) -> str:
        """Execute the runner under the shared-flag contract."""
        ctx = RunContext(quick=quick,
                         trials=self.resolve_trials(quick, trials))
        return self.runner(ctx)

    def __iter__(self) -> Iterator:
        """Deprecated: unpack as the legacy ``(description, runner)`` tuple.

        Early versions kept ``EXPERIMENTS`` as ``name -> (description,
        runner(quick, trials))``; this shim keeps that shape working while
        steering callers to ``.description`` / ``.run``.
        """
        warnings.warn(
            "unpacking an Experiment as (description, runner) is "
            "deprecated; use experiment.description and experiment.run()",
            DeprecationWarning, stacklevel=2,
        )
        yield self.description
        yield lambda quick, trials: self.run(quick=quick, trials=trials)


#: The experiment registry: name -> :class:`Experiment`.
REGISTRY: Dict[str, Experiment] = {}

#: Back-compat alias (the dict used to map name -> (description, runner);
#: entries now unpack that way only through the deprecation shim above).
EXPERIMENTS = REGISTRY


def register(name: str, description: str, quick: Optional[int] = None,
             full: Optional[int] = None):
    """Declare one experiment; decorates a ``runner(ctx) -> str``."""

    def deco(fn: Callable[[RunContext], str]) -> Callable[[RunContext], str]:
        if name in REGISTRY:
            raise ValueError(f"experiment {name!r} registered twice")
        REGISTRY[name] = Experiment(name=name, description=description,
                                    runner=fn, quick_trials=quick,
                                    full_trials=full)
        return fn

    return deco


# -- the experiments --------------------------------------------------------


@register("fig1", "Fig. 1 safety levels + Section 3.2 unicasts (E1)")
def _fig1(ctx: RunContext) -> str:
    return analysis.fig1_report()


@register("fig2", "Fig. 2 average GS rounds vs faults, 7-cubes (E2)",
          quick=100, full=1000)
def _fig2(ctx: RunContext) -> str:
    counts = list(range(1, 15 if ctx.quick else 41))
    return analysis.fig2_series(trials=ctx.trials, fault_counts=counts).render(
        extra_labels=["max_rounds"]
    )


@register("fig3", "Fig. 3 disconnected cube + Theorem 4 (E4)")
def _fig3(ctx: RunContext) -> str:
    return analysis.fig3_report()


@register("fig4", "Fig. 4 node+link faults, EGS routing (E5)")
def _fig4(ctx: RunContext) -> str:
    return analysis.fig4_report()


@register("fig5", "Fig. 5 generalized hypercube routing (E6)")
def _fig5(ctx: RunContext) -> str:
    return analysis.fig5_report()


@register("safesets", "Section 2.3 safe-set comparison (E3)",
          quick=50, full=200)
def _safesets(ctx: RunContext) -> str:
    return "\n\n".join([
        analysis.section23_table().render(),
        analysis.safe_set_sweep_table(trials=ctx.trials).render(),
    ])


@register("routability", "unicast guarantee sweep (E7)", quick=40, full=200)
def _routability(ctx: RunContext) -> str:
    return analysis.routability_table(trials=ctx.trials).render()


@register("rounds-compare", "GS vs LH vs WF rounds (E8)", quick=60, full=300)
def _rounds_compare(ctx: RunContext) -> str:
    dims = (4, 5, 6) if ctx.quick else (4, 5, 6, 7, 8)
    return analysis.rounds_comparison_table(dims=dims,
                                            trials=ctx.trials).render()


@register("compare", "router shoot-out (E9)", quick=15, full=60)
def _compare(ctx: RunContext) -> str:
    tables = analysis.comparison_table(trials=ctx.trials)
    return "\n\n".join(tbl.render() for tbl in tables)


@register("disconnected", "disconnected-cube sweep (E10)", quick=40, full=150)
def _disconnected(ctx: RunContext) -> str:
    dims = (4, 5) if ctx.quick else (4, 5, 6, 7)
    return analysis.disconnected_table(dims=dims, trials=ctx.trials).render()


@register("broadcast", "broadcast extension (E11)", quick=20, full=60)
def _broadcast(ctx: RunContext) -> str:
    return analysis.broadcast_table(trials=ctx.trials).render()


@register("ablation", "tie-break + GS policy ablations (E12)",
          quick=20, full=60)
def _ablation(ctx: RunContext) -> str:
    return "\n\n".join([
        analysis.tie_break_table(trials=ctx.trials).render(),
        analysis.gs_policy_table(trials=max(5, ctx.trials // 3)).render(),
    ])


@register("dynamic", "dynamic fault maintenance policies (E13)",
          quick=4, full=10)
def _dynamic(ctx: RunContext) -> str:
    horizon = 15 if ctx.quick else 40
    return analysis.dynamic_policy_table(trials=ctx.trials,
                                         horizon=horizon).render()


@register("conservatism", "safety level vs exact reach radius (E14)",
          quick=10, full=40)
def _conservatism(ctx: RunContext) -> str:
    return analysis.conservatism_table(trials=ctx.trials).render()


@register("traffic", "link-load distribution across schemes (E15)",
          quick=3, full=10)
def _traffic(ctx: RunContext) -> str:
    return analysis.traffic_table(batches=ctx.trials).render()


@register("contention", "latency under link contention (E16)",
          quick=3, full=6)
def _contention(ctx: RunContext) -> str:
    loads = (16, 64) if ctx.quick else (16, 64, 256)
    return analysis.contention_table(trials=ctx.trials, loads=loads).render()


@register("sensitivity", "fault-distribution sensitivity (E17)",
          quick=20, full=60)
def _sensitivity(ctx: RunContext) -> str:
    return analysis.sensitivity_table(trials=ctx.trials).render()


@register("multicast", "multicast tree vs separate unicasts (E18)",
          quick=10, full=30)
def _multicast(ctx: RunContext) -> str:
    return analysis.multicast_table(trials=ctx.trials).render()


@register("worstcase", "tightness of the n-1 round bound (E19)")
def _worstcase(ctx: RunContext) -> str:
    from .analysis import Table, find_slow_instance, isolation_cascade_instance
    from .safety import stabilization_rounds_fast

    table = Table(
        caption="E19 — Property 1's n-1 bound is tight: the isolation "
                "cascade meets it exactly; hill-climbing search approaches "
                "it from random starts",
        headers=["n", "bound n-1", "cascade rounds", "search rounds"],
    )
    dims = (4, 5, 6) if ctx.quick else (4, 5, 6, 7, 8)
    restarts = 2 if ctx.quick else 4
    for n in dims:
        topo, faults = isolation_cascade_instance(n)
        cascade = stabilization_rounds_fast(topo, faults)
        _f, searched = find_slow_instance(n, n, rng=n, restarts=restarts,
                                          steps_per_restart=120)
        table.add_row(n, n - 1, cascade, searched)
    return table.render()


@register("significance", "paired significance tests for E9 (E9b)",
          quick=15, full=40)
def _significance(ctx: RunContext) -> str:
    return analysis.significance_table(trials=ctx.trials).render()


@register("volume", "message volume: the history tax (E9c)",
          quick=15, full=40)
def _volume(ctx: RunContext) -> str:
    return analysis.volume_table(trials=ctx.trials).render()


@register("connectivity", "disconnection probability vs fault count (E20)",
          quick=60, full=300)
def _connectivity(ctx: RunContext) -> str:
    return analysis.disconnection_probability_table(
        trials=ctx.trials).render()


@register("chaos", "resilient delivery under mid-flight faults (E21)",
          quick=25, full=120)
def _chaos(ctx: RunContext) -> str:
    n = 4 if ctx.quick else 5
    return analysis.chaos_table(trials=ctx.trials, n=n).render()


@register("scorecard", "one-pass PASS/FAIL check of every headline claim")
def _scorecard(ctx: RunContext) -> str:
    return analysis.render_scorecard(analysis.scorecard())


# -- commands ---------------------------------------------------------------


def _cmd_list() -> int:
    try:
        width = max(len(name) for name in REGISTRY)
        for name in sorted(REGISTRY):
            exp = REGISTRY[name]
            trials = (
                f"trials {exp.quick_trials}/{exp.full_trials} (quick/full)"
                if exp.full_trials is not None else "no trial knob"
            )
            print(f"{name:<{width}}  {exp.description}  [{trials}]")
    except BrokenPipeError:  # piped into head/less that quit early
        pass
    return 0


def _cmd_stats(path: str) -> int:
    try:
        stats = obs.summarize_run(path)
    except FileNotFoundError:
        print(f"stats: no such file: {path}", file=sys.stderr)
        return 1
    except obs.SchemaError as exc:
        print(f"stats: {path} failed schema validation: {exc}",
              file=sys.stderr)
        return 1
    print(obs.render_stats(stats))
    return 0


def _run_experiments(names: List[str], args: argparse.Namespace,
                     recorder) -> None:
    for name in names:
        exp = REGISTRY[name]
        start = time.perf_counter()
        output = exp.run(quick=args.quick, trials=args.trials)
        elapsed = time.perf_counter() - start
        if recorder is not None:
            recorder.emit("experiment", name=name,
                          elapsed_s=round(elapsed, 6), status="ok")
        print(f"### {name} — {exp.description}")
        print(output)
        print(f"[{name} regenerated in {elapsed:.1f}s]")
        print()
        if args.save:
            from pathlib import Path

            out_dir = Path(args.save)
            out_dir.mkdir(parents=True, exist_ok=True)
            (out_dir / f"{name}.txt").write_text(output + "\n")


def _cmd_serve(argv: List[str]) -> int:
    """``repro serve``: bind the routing service's TCP line protocol."""
    import asyncio
    import signal

    import numpy as np

    from .core.faults import FaultSet
    from .service import RoutingService, ServiceConfig
    from .service.server import serve_forever

    parser = argparse.ArgumentParser(
        prog="repro serve",
        description="Serve micro-batched unicast routing over TCP "
                    "(one '<src> <dst>' request per line, JSON replies; "
                    "'fault add <node>...' bumps the epoch live).",
    )
    parser.add_argument("--dim", type=int, default=8,
                        help="hypercube dimension (default 8)")
    parser.add_argument("--faults", type=int, default=0,
                        help="seed this many random faulty nodes at start")
    parser.add_argument("--fault-nodes", type=int, nargs="*", default=None,
                        help="explicit initial faulty node ids "
                             "(overrides --faults)")
    parser.add_argument("--seed", type=int, default=0,
                        help="rng seed for --faults (default 0)")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=7429)
    parser.add_argument("--workers", type=int, default=0,
                        help="routing worker processes attaching the "
                             "shared-memory tables (0 = inline backend)")
    parser.add_argument("--max-batch", type=int, default=256)
    parser.add_argument("--window-us", type=int, default=500)
    parser.add_argument("--duration", type=float, default=None,
                        help="serve for this many seconds, then exit "
                             "cleanly (default: until SIGINT/SIGTERM)")
    args = parser.parse_args(argv)

    if args.fault_nodes is not None:
        faults = FaultSet(nodes=args.fault_nodes)
    elif args.faults:
        rng = np.random.default_rng(args.seed)
        faults = FaultSet(nodes=rng.choice(
            1 << args.dim, size=args.faults, replace=False).tolist())
    else:
        faults = FaultSet()

    config = ServiceConfig(dimension=args.dim, max_batch=args.max_batch,
                           window_us=args.window_us, workers=args.workers)

    async def run() -> None:
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGINT, signal.SIGTERM):
            loop.add_signal_handler(sig, stop.set)
        async with RoutingService(config, faults=faults) as svc:
            ready = asyncio.Event()
            server = asyncio.ensure_future(serve_forever(
                svc, host=args.host, port=args.port, ready=ready,
                duration_s=args.duration))
            await ready.wait()
            print(f"repro serve: Q{args.dim} with "
                  f"{len(faults.nodes)} faults on "
                  f"{args.host}:{args.port} "
                  f"(backend={'pool' if args.workers else 'inline'}, "
                  f"epoch {svc.epochs.current.epoch})", flush=True)
            stopper = asyncio.ensure_future(stop.wait())
            await asyncio.wait({server, stopper},
                               return_when=asyncio.FIRST_COMPLETED)
            server.cancel()
            stopper.cancel()
            for task in (server, stopper):
                try:
                    await task
                except (asyncio.CancelledError, Exception):
                    pass
        # async-with close() drained and unlinked every epoch segment.

    asyncio.run(run())
    print("repro serve: shut down cleanly (all epoch segments unlinked)",
          flush=True)
    return 0


def _cmd_bench_service(argv: List[str]) -> int:
    """``repro bench-service``: run the service harness, write the report."""
    import json
    from pathlib import Path

    from .service.bench import MIN_BATCHED_SPEEDUP, run_service_bench

    parser = argparse.ArgumentParser(
        prog="repro bench-service",
        description="Benchmark micro-batched routing-as-a-service against "
                    "one-kernel-call-per-request, with open-loop latency "
                    "and an offline-cross-checked fault-churn run.",
    )
    parser.add_argument("--quick", action="store_true",
                        help="smaller request counts; skips the "
                             f"{MIN_BATCHED_SPEEDUP:.0f}x speedup floor "
                             "(correctness asserts always run)")
    parser.add_argument("--workers", type=int, default=0,
                        help="routing worker processes (0 = inline backend)")
    parser.add_argument("--output", type=Path,
                        default=Path("BENCH_service.json"),
                        help="report path (default ./BENCH_service.json)")
    args = parser.parse_args(argv)

    report = run_service_bench(quick=args.quick, workers=args.workers)
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report, indent=2))
    print(f"\nwrote {args.output}")
    print(f"speedup (batched vs naive): {report['speedup_batched']:.2f}x; "
          f"latency p50 {report['latency']['p50_ms']:.2f} ms / "
          f"p99 {report['latency']['p99_ms']:.2f} ms; churn torn reads "
          f"{report['churn']['torn_reads']}, dropped "
          f"{report['churn']['dropped']}")
    return 0


def main(argv: List[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    # Service commands take their own flag sets, so they dispatch before
    # the experiment parser (whose positional 'command' stays closed).
    if argv and argv[0] == "serve":
        return _cmd_serve(list(argv[1:]))
    if argv and argv[0] == "bench-service":
        return _cmd_bench_service(list(argv[1:]))
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "command",
        choices=sorted(REGISTRY) + ["all", "list", "stats"],
        help="experiment id (see DESIGN.md), 'all', 'list', or "
             "'stats RUN.jsonl' ('serve' and 'bench-service' run the "
             "routing service; see 'repro serve --help')",
    )
    parser.add_argument("path", nargs="?", default=None,
                        help="run file for the stats command")
    parser.add_argument("--quick", action="store_true",
                        help="reduced trial counts for a fast smoke run")
    parser.add_argument("--trials", type=int, default=None,
                        help="override the per-experiment trial count")
    parser.add_argument("--jobs", type=int, default=None,
                        help="worker processes for Monte-Carlo sweeps "
                             f"(default: ${JOBS_ENV_VAR} or serial); "
                             "results are identical for any value")
    parser.add_argument("--route-kernel", choices=list(KERNELS),
                        default=None,
                        help="routing kernel for batched unicast calls "
                             f"(default: ${KERNEL_ENV_VAR} or vectorized); "
                             "'scalar' forces the per-route reference walk "
                             "— outputs are identical either way")
    parser.add_argument("--level-kernel", choices=list(LEVEL_KERNELS),
                        default=None,
                        help="kernel for batched safety-level computation "
                             f"(default: ${LEVEL_KERNEL_ENV_VAR} or auto); "
                             "'auto' picks swar (n<=9) or packed (n>=10) — "
                             "outputs are identical for every choice")
    parser.add_argument("--save", metavar="DIR", default=None,
                        help="also write each experiment's output to "
                             "DIR/<name>.txt")
    parser.add_argument("--metrics-out", metavar="PATH", default=None,
                        help="record run telemetry (schema-versioned JSONL) "
                             "to PATH; read it back with 'stats PATH'")
    args = parser.parse_args(argv)

    if args.command == "stats":
        if args.path is None:
            parser.error("stats requires a run file: repro stats RUN.jsonl")
        return _cmd_stats(args.path)
    if args.path is not None:
        parser.error(f"unexpected argument {args.path!r} "
                     f"(only the stats command takes a path)")

    if args.jobs is not None:
        if args.jobs < 1:
            parser.error("--jobs must be >= 1")
        # The sweep engine resolves this env knob wherever a runner does
        # not take an explicit jobs argument, so one flag covers them all.
        os.environ[JOBS_ENV_VAR] = str(args.jobs)

    if args.route_kernel is not None:
        # Resolved by route_unicast_batch at every call site (including
        # sweep workers, which inherit the environment), so one flag
        # covers every batched routing dispatch.
        os.environ[KERNEL_ENV_VAR] = args.route_kernel

    if args.level_kernel is not None:
        # Same pattern for compute_safety_levels_batch: resolved at every
        # call through the shared dispatch helper.
        os.environ[LEVEL_KERNEL_ENV_VAR] = args.level_kernel

    if args.command == "list":
        return _cmd_list()

    names = sorted(REGISTRY) if args.command == "all" else [args.command]
    if args.metrics_out:
        config = {"command": args.command, "quick": args.quick,
                  "trials": args.trials, "jobs": args.jobs,
                  "route_kernel": args.route_kernel,
                  "level_kernel": args.level_kernel}
        with obs.observed(args.metrics_out, tool="repro.cli",
                          config=config) as (_registry, recorder):
            _run_experiments(names, args, recorder)
        print(f"[telemetry written to {args.metrics_out}; "
              f"summarize with: repro stats {args.metrics_out}]")
    else:
        _run_experiments(names, args, None)
    return 0


if __name__ == "__main__":
    sys.exit(main())
