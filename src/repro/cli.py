"""Command-line entry point: regenerate any paper table or figure.

Usage::

    python -m repro.cli list
    python -m repro.cli fig1
    python -m repro.cli fig2 --trials 500
    python -m repro.cli fig2 --jobs 4 --metrics-out run.jsonl
    python -m repro.cli stats run.jsonl
    python -m repro.cli all --quick
    python -m repro.cli serve --dim 8 --faults 20 --port 7429
    python -m repro.cli bench-service --quick
    python -m repro.cli campaign run spec.toml --out runs/c1 --jobs 4
    python -m repro.cli campaign resume runs/c1
    python -m repro.cli campaign report runs/c1

Every experiment is seeded; rerunning a command reproduces its output
bit-for-bit.  ``--quick`` shrinks trial counts for smoke runs.  ``--jobs``
fans Monte-Carlo trials out over worker processes (equivalent to setting
``REPRO_JOBS``); the sweep engine guarantees results do not depend on the
worker count.  ``--metrics-out PATH`` records the run's telemetry — a
provenance manifest, per-attempt routing outcomes, kernel batches, sweep
throughput and a final counter snapshot — as schema-versioned JSONL
(see :mod:`repro.obs`); ``stats PATH`` folds such a file back into the
run's headline numbers offline.

Experiments live in the declarative registry of
:mod:`repro.analysis.experiments`: each entry binds a name to a
description, a runner and its default trial counts, and every entry runs
through the one ``ExperimentSpec.run(*, trials, seed, jobs, recorder,
quick)`` signature.  ``list`` enumerates the registry with each entry's
description and accepted flags.  ``campaign`` drives the fault-campaign
DSE engine (:mod:`repro.campaign`) over that same interface.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import List

from . import obs
from .analysis import experiments as _experiments
from .analysis.experiments import (
    ExperimentSpec,
    REGISTRY,
    RunContext,
    register,
)
from .analysis.sweep import JOBS_ENV_VAR
from .routing.batch import KERNEL_ENV_VAR, KERNELS
from .safety.levels import LEVEL_KERNEL_ENV_VAR, LEVEL_KERNELS

__all__ = ["main", "RunContext", "Experiment", "ExperimentSpec",
           "REGISTRY", "EXPERIMENTS", "register"]

#: Back-compat aliases: the registry (and its entry class) used to live
#: here; both names keep working.  Entries still unpack as the legacy
#: ``(description, runner)`` tuple through the deprecation shim on
#: :class:`ExperimentSpec`.
Experiment = ExperimentSpec
EXPERIMENTS = REGISTRY


# -- commands ---------------------------------------------------------------


def _cmd_list() -> int:
    """Enumerate the unified registry: description + accepted flags."""
    try:
        width = max(len(name) for name in REGISTRY)
        for exp in _experiments.iter_experiments():
            print(f"{exp.name:<{width}}  {exp.description}")
            trials = (
                f"trials default {exp.full_trials} "
                f"(quick {exp.quick_trials}); "
                if exp.full_trials is not None else ""
            )
            print(f"{'':<{width}}  {trials}flags: {', '.join(exp.flags)}")
    except BrokenPipeError:  # piped into head/less that quit early
        pass
    return 0


def _cmd_stats(path: str) -> int:
    try:
        stats = obs.summarize_run(path)
    except FileNotFoundError:
        print(f"stats: no such file: {path}", file=sys.stderr)
        return 1
    except obs.SchemaError as exc:
        print(f"stats: {path} failed schema validation: {exc}",
              file=sys.stderr)
        return 1
    print(obs.render_stats(stats))
    return 0


def _run_experiments(names: List[str], args: argparse.Namespace,
                     recorder) -> None:
    for name in names:
        exp = REGISTRY[name]
        start = time.perf_counter()
        output = exp.run(quick=args.quick, trials=args.trials,
                         seed=args.seed, recorder=recorder)
        elapsed = time.perf_counter() - start
        if recorder is not None:
            recorder.emit("experiment", name=name,
                          elapsed_s=round(elapsed, 6), status="ok")
        print(f"### {name} — {exp.description}")
        print(output)
        print(f"[{name} regenerated in {elapsed:.1f}s]")
        print()
        if args.save:
            from pathlib import Path

            out_dir = Path(args.save)
            out_dir.mkdir(parents=True, exist_ok=True)
            (out_dir / f"{name}.txt").write_text(output + "\n")


def _cmd_serve(argv: List[str]) -> int:
    """``repro serve``: bind the routing service's TCP front-end.

    Single-service mode (default) serves one cube.  With ``--shards N``
    and one or more ``--tenant name:dim[:faults]`` specs, it serves a
    :class:`~repro.service.ShardRouter` instead — clients bind a tenant
    first (a ``TENANT`` frame, or a ``tenant <name>`` line).  Both modes
    speak the binary wire protocol and the line protocol on one port,
    auto-detected per connection from its first byte.
    """
    import asyncio
    import signal

    import numpy as np

    from .core.faults import FaultSet
    from .service import RoutingService, ServiceConfig, ShardRouter
    from .service.server import serve_forever

    parser = argparse.ArgumentParser(
        prog="repro serve",
        description="Serve micro-batched unicast routing over TCP "
                    "(binary wire frames or '<src> <dst>' lines, "
                    "auto-detected; 'fault add <node>...' bumps the "
                    "epoch live).",
    )
    parser.add_argument("--dim", type=int, default=8,
                        help="hypercube dimension (default 8)")
    parser.add_argument("--faults", type=int, default=0,
                        help="seed this many random faulty nodes at start")
    parser.add_argument("--fault-nodes", type=int, nargs="*", default=None,
                        help="explicit initial faulty node ids "
                             "(overrides --faults)")
    parser.add_argument("--seed", type=int, default=0,
                        help="rng seed for --faults (default 0)")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=7429)
    parser.add_argument("--workers", type=int, default=0,
                        help="routing worker processes attaching the "
                             "shared-memory tables (0 = inline backend)")
    parser.add_argument("--max-batch", type=int, default=256)
    parser.add_argument("--window-us", type=int, default=500)
    parser.add_argument("--shards", type=int, default=0,
                        help="serve a shard router with this many shards "
                             "instead of a single service (requires "
                             "--tenant)")
    parser.add_argument("--tenant", action="append", default=[],
                        metavar="NAME:DIM[:FAULTS]",
                        help="register a tenant cube on the shard router "
                             "(repeatable); FAULTS random faulty nodes "
                             "are seeded from --seed")
    parser.add_argument("--duration", type=float, default=None,
                        help="serve for this many seconds, then exit "
                             "cleanly (default: until SIGINT/SIGTERM)")
    parser.add_argument("--auto-failover", action="store_true",
                        help="sharded mode: run a heartbeat failure "
                             "detector and automatically re-place "
                             "tenants off dead shards (journal-exact "
                             "epoch recovery)")
    parser.add_argument("--probe-interval-ms", type=float, default=50.0,
                        help="failure-detector heartbeat period "
                             "(default 50 ms; needs --auto-failover)")
    parser.add_argument("--suspect-after", type=int, default=2,
                        help="missed probes before a shard turns "
                             "SUSPECT (default 2)")
    parser.add_argument("--dead-after", type=int, default=5,
                        help="missed probes before a SUSPECT shard is "
                             "declared DEAD and failed over (default 5)")
    parser.add_argument("--max-tenant-inflight", type=int, default=0,
                        help="admission control: shed (E_OVERLOAD) "
                             "requests past this many in flight per "
                             "tenant (0 = unlimited)")
    args = parser.parse_args(argv)

    def _seeded_faults(dim: int, count: int, salt: int) -> FaultSet:
        if not count:
            return FaultSet()
        rng = np.random.default_rng(args.seed + salt)
        return FaultSet(nodes=rng.choice(
            1 << dim, size=count, replace=False).tolist())

    if args.shards and not args.tenant:
        parser.error("--shards requires at least one --tenant spec")
    if args.tenant and not args.shards:
        parser.error("--tenant requires --shards")
    if args.auto_failover and not args.shards:
        parser.error("--auto-failover requires --shards")

    tenant_specs = []
    for spec in args.tenant:
        fields = spec.split(":")
        if len(fields) not in (2, 3):
            parser.error(f"bad --tenant spec {spec!r} "
                         "(want NAME:DIM[:FAULTS])")
        tenant_specs.append((fields[0], int(fields[1]),
                             int(fields[2]) if len(fields) == 3 else 0))

    if args.fault_nodes is not None:
        faults = FaultSet(nodes=args.fault_nodes)
    else:
        faults = _seeded_faults(args.dim, args.faults, salt=0)

    async def _serve_target(target, banner: str) -> None:
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGINT, signal.SIGTERM):
            loop.add_signal_handler(sig, stop.set)
        ready = asyncio.Event()
        server = asyncio.ensure_future(serve_forever(
            target, host=args.host, port=args.port, ready=ready,
            duration_s=args.duration))
        await ready.wait()
        print(banner, flush=True)
        stopper = asyncio.ensure_future(stop.wait())
        await asyncio.wait({server, stopper},
                           return_when=asyncio.FIRST_COMPLETED)
        server.cancel()
        stopper.cancel()
        for task in (server, stopper):
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass

    async def run_single() -> None:
        config = ServiceConfig(dimension=args.dim, max_batch=args.max_batch,
                               window_us=args.window_us,
                               workers=args.workers)
        async with RoutingService(config, faults=faults) as svc:
            await _serve_target(svc, (
                f"repro serve: Q{args.dim} with "
                f"{len(faults.nodes)} faults on "
                f"{args.host}:{args.port} "
                f"(backend={'pool' if args.workers else 'inline'}, "
                f"epoch {svc.epochs.current.epoch})"))
        # async-with close() drained and unlinked every epoch segment.

    async def run_sharded() -> None:
        from .service import FailureDetector, HealthConfig

        async with ShardRouter(shards=args.shards, workers=args.workers,
                               max_batch=args.max_batch,
                               window_us=args.window_us,
                               auto_failover=args.auto_failover,
                               max_tenant_inflight=(
                                   args.max_tenant_inflight or None),
                               ) as router:
            for i, (name, dim, n_faults) in enumerate(tenant_specs):
                sid = await router.add_tenant(
                    name, dimension=dim,
                    faults=_seeded_faults(dim, n_faults, salt=i + 1))
                print(f"repro serve: tenant {name!r} (Q{dim}, "
                      f"{n_faults} faults) -> shard {sid}", flush=True)
            banner = (
                f"repro serve: {len(tenant_specs)} tenants over "
                f"{args.shards} shards on {args.host}:{args.port} "
                f"(backend={'pool' if args.workers else 'inline'}"
                + (f", failover on, probes every "
                   f"{args.probe_interval_ms:g} ms"
                   if args.auto_failover else "") + ")")
            if args.auto_failover:
                detector = FailureDetector(router, HealthConfig(
                    interval_s=args.probe_interval_ms / 1e3,
                    suspect_after=args.suspect_after,
                    dead_after=args.dead_after))
                async with detector:
                    await _serve_target(router, banner)
            else:
                await _serve_target(router, banner)

    asyncio.run(run_sharded() if args.shards else run_single())
    print("repro serve: shut down cleanly (all epoch segments unlinked)",
          flush=True)
    return 0


def _cmd_bench_service(argv: List[str]) -> int:
    """``repro bench-service``: run the service harness, write the report."""
    import json
    from pathlib import Path

    from .service.bench import MIN_BATCHED_SPEEDUP, run_service_bench

    parser = argparse.ArgumentParser(
        prog="repro bench-service",
        description="Benchmark micro-batched routing-as-a-service against "
                    "one-kernel-call-per-request, with open-loop latency "
                    "and an offline-cross-checked fault-churn run.",
    )
    parser.add_argument("--quick", action="store_true",
                        help="smaller request counts; skips the "
                             f"{MIN_BATCHED_SPEEDUP:.0f}x speedup floor "
                             "(correctness asserts always run)")
    parser.add_argument("--workers", type=int, default=0,
                        help="routing worker processes (0 = inline backend)")
    parser.add_argument("--output", type=Path,
                        default=Path("BENCH_service.json"),
                        help="report path (default ./BENCH_service.json)")
    args = parser.parse_args(argv)

    report = run_service_bench(quick=args.quick, workers=args.workers)
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report, indent=2))
    print(f"\nwrote {args.output}")
    latency = report["latency"]
    print(f"speedup (batched vs naive): {report['speedup_batched']:.2f}x; "
          f"sharded blocks {report['sharded']['routes_per_second']:,.0f} "
          f"routes/s ({report['sharded']['speedup_vs_batched']:.1f}x "
          f"batched)")
    print(f"latency steady p50/p95/p99 "
          f"{latency['steady']['p50_ms']:.2f}/"
          f"{latency['steady']['p95_ms']:.2f}/"
          f"{latency['steady']['p99_ms']:.2f} ms; churn p99 "
          f"{latency['churn']['p99_ms']:.2f} ms "
          f"({latency['p99_ratio']:.2f}x steady); churn torn reads "
          f"{report['churn']['torn_reads']}, dropped "
          f"{report['churn']['dropped']}")
    return 0


def _cmd_campaign(argv: List[str]) -> int:
    """``repro campaign``: the fault-campaign DSE engine.

    Subcommands: ``run SPEC --out DIR`` executes a declarative campaign
    (TOML/JSON spec) cell by cell with per-cell checkpointing; ``resume
    DIR`` continues an interrupted campaign, skipping finished cells (the
    merged output is byte-identical to an uninterrupted run); ``report
    DIR`` re-renders the decision-support report; ``adversarial`` runs
    the evolutionary search for a minimal fault set that breaks C1–C3
    routability.
    """
    from .campaign import (
        adversarial_search,
        load_spec,
        render_report,
        resume_campaign,
        run_campaign,
    )

    parser = argparse.ArgumentParser(
        prog="repro campaign",
        description="Declarative fault-campaign design-space exploration "
                    "(factorial designs over fault model x intensity x "
                    "chaos profile x routing policy).",
    )
    sub = parser.add_subparsers(dest="action", required=True)

    p_run = sub.add_parser("run", help="execute a campaign spec")
    p_run.add_argument("spec", help="TOML or JSON campaign spec file")
    p_run.add_argument("--out", default=None,
                       help="campaign directory (default: the spec's "
                            "out_dir, else campaign_<name>)")
    p_run.add_argument("--jobs", type=int, default=None)
    p_run.add_argument("--metrics-out", default=None,
                       help="record campaign telemetry (JSONL) to PATH")
    p_run.add_argument("--max-cells", type=int, default=None,
                       help="stop after this many cells (for testing "
                            "resume; the checkpoint keeps the rest)")

    p_resume = sub.add_parser("resume", help="continue an interrupted run")
    p_resume.add_argument("dir", help="campaign directory")
    p_resume.add_argument("--jobs", type=int, default=None)
    p_resume.add_argument("--metrics-out", default=None)

    p_report = sub.add_parser("report", help="re-render the report")
    p_report.add_argument("dir", help="campaign directory")

    p_adv = sub.add_parser("adversarial",
                           help="evolve a minimal routability-breaking "
                                "fault set")
    p_adv.add_argument("--dim", type=int, default=6)
    p_adv.add_argument("--max-faults", type=int, default=None,
                       help="fault budget (default: the dimension)")
    p_adv.add_argument("--seed", type=int, default=0)
    p_adv.add_argument("--generations", type=int, default=40)

    args = parser.parse_args(argv)

    if args.action == "run":
        spec = load_spec(args.spec)
        if args.metrics_out:
            config = {"command": "campaign run", "spec": spec.to_dict(),
                      "jobs": args.jobs, "max_cells": args.max_cells}
            with obs.observed(args.metrics_out, tool="repro.cli",
                              config=config) as (_registry, recorder):
                result = run_campaign(spec, out_dir=args.out,
                                      jobs=args.jobs, recorder=recorder,
                                      max_cells=args.max_cells)
        else:
            result = run_campaign(spec, out_dir=args.out, jobs=args.jobs,
                                  max_cells=args.max_cells)
        print(result.summary())
        return 0 if result.complete else 3
    if args.action == "resume":
        if args.metrics_out:
            config = {"command": "campaign resume", "dir": args.dir,
                      "jobs": args.jobs}
            with obs.observed(args.metrics_out, tool="repro.cli",
                              config=config) as (_registry, recorder):
                result = resume_campaign(args.dir, jobs=args.jobs,
                                         recorder=recorder)
        else:
            result = resume_campaign(args.dir, jobs=args.jobs)
        print(result.summary())
        return 0 if result.complete else 3
    if args.action == "report":
        print(render_report(args.dir))
        return 0
    if args.action == "adversarial":
        found = adversarial_search(args.dim, max_faults=args.max_faults,
                                   seed=args.seed,
                                   generations=args.generations)
        print(found.describe())
        return 0 if found.confirmed else 1
    parser.error(f"unknown campaign action {args.action!r}")
    return 2


def main(argv: List[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    # Service commands take their own flag sets, so they dispatch before
    # the experiment parser (whose positional 'command' stays closed).
    if argv and argv[0] == "serve":
        return _cmd_serve(list(argv[1:]))
    if argv and argv[0] == "bench-service":
        return _cmd_bench_service(list(argv[1:]))
    if argv and argv[0] == "campaign":
        return _cmd_campaign(list(argv[1:]))
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "command",
        choices=sorted(REGISTRY) + ["all", "list", "stats"],
        help="experiment id (see DESIGN.md), 'all', 'list', or "
             "'stats RUN.jsonl' ('serve' and 'bench-service' run the "
             "routing service, 'campaign' the DSE engine; see "
             "'repro campaign --help')",
    )
    parser.add_argument("path", nargs="?", default=None,
                        help="run file for the stats command")
    parser.add_argument("--quick", action="store_true",
                        help="reduced trial counts for a fast smoke run")
    parser.add_argument("--trials", type=int, default=None,
                        help="override the per-experiment trial count")
    parser.add_argument("--jobs", type=int, default=None,
                        help="worker processes for Monte-Carlo sweeps "
                             f"(default: ${JOBS_ENV_VAR} or serial); "
                             "results are identical for any value")
    parser.add_argument("--seed", type=int, default=None,
                        help="override an experiment's canonical seed "
                             "(experiments that ignore it keep their "
                             "published numbers)")
    parser.add_argument("--route-kernel", choices=list(KERNELS),
                        default=None,
                        help="routing kernel for batched unicast calls "
                             f"(default: ${KERNEL_ENV_VAR} or vectorized); "
                             "'scalar' forces the per-route reference walk "
                             "— outputs are identical either way")
    parser.add_argument("--level-kernel", choices=list(LEVEL_KERNELS),
                        default=None,
                        help="kernel for batched safety-level computation "
                             f"(default: ${LEVEL_KERNEL_ENV_VAR} or auto); "
                             "'auto' picks swar (n<=9) or packed (n>=10) — "
                             "outputs are identical for every choice")
    parser.add_argument("--save", metavar="DIR", default=None,
                        help="also write each experiment's output to "
                             "DIR/<name>.txt")
    parser.add_argument("--metrics-out", metavar="PATH", default=None,
                        help="record run telemetry (schema-versioned JSONL) "
                             "to PATH; read it back with 'stats PATH'")
    args = parser.parse_args(argv)

    if args.command == "stats":
        if args.path is None:
            parser.error("stats requires a run file: repro stats RUN.jsonl")
        return _cmd_stats(args.path)
    if args.path is not None:
        parser.error(f"unexpected argument {args.path!r} "
                     f"(only the stats command takes a path)")

    if args.jobs is not None:
        if args.jobs < 1:
            parser.error("--jobs must be >= 1")
        # The sweep engine resolves this env knob wherever a runner does
        # not take an explicit jobs argument, so one flag covers them all.
        os.environ[JOBS_ENV_VAR] = str(args.jobs)

    if args.route_kernel is not None:
        # Resolved by route_unicast_batch at every call site (including
        # sweep workers, which inherit the environment), so one flag
        # covers every batched routing dispatch.
        os.environ[KERNEL_ENV_VAR] = args.route_kernel

    if args.level_kernel is not None:
        # Same pattern for compute_safety_levels_batch: resolved at every
        # call through the shared dispatch helper.
        os.environ[LEVEL_KERNEL_ENV_VAR] = args.level_kernel

    if args.command == "list":
        return _cmd_list()

    names = sorted(REGISTRY) if args.command == "all" else [args.command]
    if args.metrics_out:
        config = {"command": args.command, "quick": args.quick,
                  "trials": args.trials, "jobs": args.jobs,
                  "route_kernel": args.route_kernel,
                  "level_kernel": args.level_kernel}
        with obs.observed(args.metrics_out, tool="repro.cli",
                          config=config) as (_registry, recorder):
            _run_experiments(names, args, recorder)
        print(f"[telemetry written to {args.metrics_out}; "
              f"summarize with: repro stats {args.metrics_out}]")
    else:
        _run_experiments(names, args, None)
    return 0


if __name__ == "__main__":
    sys.exit(main())
