"""Command-line entry point: regenerate any paper table or figure.

Usage::

    python -m repro.cli list
    python -m repro.cli fig1
    python -m repro.cli fig2 --trials 500
    python -m repro.cli fig2 --jobs 4
    python -m repro.cli all --quick

Every experiment is seeded; rerunning a command reproduces its output
bit-for-bit.  ``--quick`` shrinks trial counts for smoke runs.  ``--jobs``
fans Monte-Carlo trials out over worker processes (equivalent to setting
``REPRO_JOBS``); the sweep engine guarantees results do not depend on the
worker count.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import Callable, Dict, List

from . import analysis
from .analysis.sweep import JOBS_ENV_VAR

__all__ = ["main", "EXPERIMENTS"]


def _fig2(quick: bool, trials: int | None) -> str:
    t = trials if trials else (100 if quick else 1000)
    counts = list(range(1, 15 if quick else 41))
    return analysis.fig2_series(trials=t, fault_counts=counts).render(
        extra_labels=["max_rounds"]
    )


def _safesets(quick: bool, trials: int | None) -> str:
    t = trials if trials else (50 if quick else 200)
    return "\n\n".join([
        analysis.section23_table().render(),
        analysis.safe_set_sweep_table(trials=t).render(),
    ])


def _routability(quick: bool, trials: int | None) -> str:
    t = trials if trials else (40 if quick else 200)
    return analysis.routability_table(trials=t).render()


def _rounds_compare(quick: bool, trials: int | None) -> str:
    t = trials if trials else (60 if quick else 300)
    dims = (4, 5, 6) if quick else (4, 5, 6, 7, 8)
    return analysis.rounds_comparison_table(dims=dims, trials=t).render()


def _compare(quick: bool, trials: int | None) -> str:
    t = trials if trials else (15 if quick else 60)
    tables = analysis.comparison_table(trials=t)
    return "\n\n".join(tbl.render() for tbl in tables)


def _disconnected(quick: bool, trials: int | None) -> str:
    t = trials if trials else (40 if quick else 150)
    dims = (4, 5) if quick else (4, 5, 6, 7)
    return analysis.disconnected_table(dims=dims, trials=t).render()


def _broadcast(quick: bool, trials: int | None) -> str:
    t = trials if trials else (20 if quick else 60)
    return analysis.broadcast_table(trials=t).render()


def _ablation(quick: bool, trials: int | None) -> str:
    t = trials if trials else (20 if quick else 60)
    gs_trials = max(5, t // 3)
    return "\n\n".join([
        analysis.tie_break_table(trials=t).render(),
        analysis.gs_policy_table(trials=gs_trials).render(),
    ])


def _dynamic(quick: bool, trials: int | None) -> str:
    t = trials if trials else (4 if quick else 10)
    horizon = 15 if quick else 40
    return analysis.dynamic_policy_table(trials=t, horizon=horizon).render()


def _conservatism(quick: bool, trials: int | None) -> str:
    t = trials if trials else (10 if quick else 40)
    return analysis.conservatism_table(trials=t).render()


def _traffic(quick: bool, trials: int | None) -> str:
    t = trials if trials else (3 if quick else 10)
    return analysis.traffic_table(batches=t).render()


def _contention(quick: bool, trials: int | None) -> str:
    t = trials if trials else (3 if quick else 6)
    loads = (16, 64) if quick else (16, 64, 256)
    return analysis.contention_table(trials=t, loads=loads).render()


def _sensitivity(quick: bool, trials: int | None) -> str:
    t = trials if trials else (20 if quick else 60)
    return analysis.sensitivity_table(trials=t).render()


def _multicast(quick: bool, trials: int | None) -> str:
    t = trials if trials else (10 if quick else 30)
    return analysis.multicast_table(trials=t).render()


def _significance(quick: bool, trials: int | None) -> str:
    t = trials if trials else (15 if quick else 40)
    return analysis.significance_table(trials=t).render()


def _worstcase(quick: bool, trials: int | None) -> str:
    from .analysis import Table, find_slow_instance, isolation_cascade_instance
    from .safety import stabilization_rounds_fast

    table = Table(
        caption="E19 — Property 1's n-1 bound is tight: the isolation "
                "cascade meets it exactly; hill-climbing search approaches "
                "it from random starts",
        headers=["n", "bound n-1", "cascade rounds", "search rounds"],
    )
    dims = (4, 5, 6) if quick else (4, 5, 6, 7, 8)
    restarts = 2 if quick else 4
    for n in dims:
        topo, faults = isolation_cascade_instance(n)
        cascade = stabilization_rounds_fast(topo, faults)
        _f, searched = find_slow_instance(n, n, rng=n, restarts=restarts,
                                          steps_per_restart=120)
        table.add_row(n, n - 1, cascade, searched)
    return table.render()


#: name -> (description, runner(quick, trials) -> printable text)
EXPERIMENTS: Dict[str, tuple] = {
    "fig1": ("Fig. 1 safety levels + Section 3.2 unicasts (E1)",
             lambda quick, trials: analysis.fig1_report()),
    "fig2": ("Fig. 2 average GS rounds vs faults, 7-cubes (E2)", _fig2),
    "fig3": ("Fig. 3 disconnected cube + Theorem 4 (E4)",
             lambda quick, trials: analysis.fig3_report()),
    "fig4": ("Fig. 4 node+link faults, EGS routing (E5)",
             lambda quick, trials: analysis.fig4_report()),
    "fig5": ("Fig. 5 generalized hypercube routing (E6)",
             lambda quick, trials: analysis.fig5_report()),
    "safesets": ("Section 2.3 safe-set comparison (E3)", _safesets),
    "routability": ("unicast guarantee sweep (E7)", _routability),
    "rounds-compare": ("GS vs LH vs WF rounds (E8)", _rounds_compare),
    "compare": ("router shoot-out (E9)", _compare),
    "disconnected": ("disconnected-cube sweep (E10)", _disconnected),
    "broadcast": ("broadcast extension (E11)", _broadcast),
    "ablation": ("tie-break + GS policy ablations (E12)", _ablation),
    "dynamic": ("dynamic fault maintenance policies (E13)", _dynamic),
    "conservatism": ("safety level vs exact reach radius (E14)",
                     _conservatism),
    "traffic": ("link-load distribution across schemes (E15)", _traffic),
    "contention": ("latency under link contention (E16)", _contention),
    "sensitivity": ("fault-distribution sensitivity (E17)", _sensitivity),
    "multicast": ("multicast tree vs separate unicasts (E18)", _multicast),
    "worstcase": ("tightness of the n-1 round bound (E19)", _worstcase),
    "significance": ("paired significance tests for E9 (E9b)",
                     _significance),
    "volume": ("message volume: the history tax (E9c)",
               lambda quick, trials: analysis.volume_table(
                   trials=trials or (15 if quick else 40)).render()),
    "connectivity": ("disconnection probability vs fault count (E20)",
                     lambda quick, trials: analysis.
                     disconnection_probability_table(
                         trials=trials or (60 if quick else 300)).render()),
    "scorecard": ("one-pass PASS/FAIL check of every headline claim",
                  lambda quick, trials: analysis.render_scorecard(
                      analysis.scorecard())),
}


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["all", "list"],
        help="experiment id (see DESIGN.md), 'all', or 'list'",
    )
    parser.add_argument("--quick", action="store_true",
                        help="reduced trial counts for a fast smoke run")
    parser.add_argument("--trials", type=int, default=None,
                        help="override the per-experiment trial count")
    parser.add_argument("--jobs", type=int, default=None,
                        help="worker processes for Monte-Carlo sweeps "
                             f"(default: ${JOBS_ENV_VAR} or serial); "
                             "results are identical for any value")
    parser.add_argument("--save", metavar="DIR", default=None,
                        help="also write each experiment's output to "
                             "DIR/<name>.txt")
    args = parser.parse_args(argv)

    if args.jobs is not None:
        if args.jobs < 1:
            parser.error("--jobs must be >= 1")
        # The sweep engine resolves this env knob wherever a runner does
        # not take an explicit jobs argument, so one flag covers them all.
        os.environ[JOBS_ENV_VAR] = str(args.jobs)

    if args.experiment == "list":
        try:
            for name in sorted(EXPERIMENTS):
                print(f"{name:<16} {EXPERIMENTS[name][0]}")
        except BrokenPipeError:  # piped into head/less that quit early
            pass
        return 0

    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        desc, runner = EXPERIMENTS[name]
        start = time.perf_counter()
        output = runner(args.quick, args.trials)
        elapsed = time.perf_counter() - start
        print(f"### {name} — {desc}")
        print(output)
        print(f"[{name} regenerated in {elapsed:.1f}s]")
        print()
        if args.save:
            from pathlib import Path

            out_dir = Path(args.save)
            out_dir.mkdir(parents=True, exist_ok=True)
            (out_dir / f"{name}.txt").write_text(output + "\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
