"""Adversarial fault-set search: minimal patterns that defeat C1–C3.

The paper's Property 2 guarantees routability below ``n`` faults; at
exactly ``n`` faults the guarantee lapses, and specific *structured*
patterns make the safety-level ladder abort even though the cube stays
connected.  This module searches for such patterns with a small seeded
evolutionary loop:

* the population is seeded with **distance-2 ring candidates** — faults
  at ``s ⊕ e_i ⊕ e_{i+1 mod n}`` give every neighbor of ``s`` two faulty
  neighbors, collapsing their levels below ``H−1`` for the antipodal
  destination while leaving the cube connected — plus uniform random
  sets;
* fitness of a fault set is its number of **breaking pairs**: alive,
  connected (source, dest) pairs for which none of C1/C2/C3 holds, so
  the safety-level unicast aborts at the source while a BFS oracle still
  delivers;
* the best breaking set is **greedily minimized** (drop any fault whose
  removal keeps the set breaking), then **confirmed** against the real
  router stack: ``check_feasibility`` must report NONE, ``route_unicast``
  must abort, ``route_oracle`` must deliver, and the Theorem-3 invariant
  checker (:func:`repro.routing.validation.audit_theorem3`) must find no
  violation in either result.

Everything is deterministic given ``seed``; the fitness evaluation uses
an integer-only reimplementation of the C1/C2/C3 tests so a Q6 search
stays well under a second.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, FrozenSet, List, Optional, Tuple

from ..core.fault_models import as_rng
from ..core.faults import FaultSet
from ..core.hypercube import Hypercube
from ..routing.baselines.oracle import route_oracle
from ..routing.result import RouteStatus
from ..routing.safety_unicast import check_feasibility, route_unicast
from ..routing.validation import audit_theorem3
from ..safety.levels import SafetyLevels

__all__ = ["BreakInstance", "adversarial_search", "confirm_break"]


# -- fast fitness -------------------------------------------------------------

def _breaking_pairs(topo: Hypercube,
                    faults: FaultSet) -> List[Tuple[int, int]]:
    """All alive, connected (s, d) pairs with no C1/C2/C3 condition.

    Integer reimplementation of the source-side tests (levels come from
    the real kernel); connectivity is one BFS component sweep, so each
    candidate costs O(N²·n) cheap operations.
    """
    n = topo.dimension
    num = topo.num_nodes
    faulty = set(faults.nodes)
    alive = [v for v in range(num) if v not in faulty]
    if len(alive) < 2:
        return []

    sl = SafetyLevels.compute(topo, faults)
    level = [int(sl.level(v)) for v in range(num)]

    # Connected components over the surviving subgraph.
    component = {}
    for start in alive:
        if start in component:
            continue
        stack = [start]
        component[start] = start
        while stack:
            u = stack.pop()
            for dim in range(n):
                w = u ^ (1 << dim)
                if w not in faulty and w not in component:
                    component[w] = start
                    stack.append(w)

    pairs: List[Tuple[int, int]] = []
    for s in alive:
        neighbor_level = [level[s ^ (1 << dim)] for dim in range(n)]
        own = level[s]
        for d in alive:
            if d == s or component[d] != component[s]:
                continue
            vector = s ^ d
            h = vector.bit_count()
            if own >= h:                                   # C1
                continue
            best_pref = max(neighbor_level[dim] for dim in range(n)
                            if vector >> dim & 1)
            if best_pref >= h - 1:                         # C2
                continue
            if h < n:                                      # C3 needs a spare
                best_spare = max(neighbor_level[dim] for dim in range(n)
                                 if not vector >> dim & 1)
                if best_spare >= h + 1:
                    continue
            pairs.append((s, d))
    return pairs


def _ring_candidate(n: int, source: int, rotation: int) -> FrozenSet[int]:
    """The structured seed: ``source ⊕ e_i ⊕ e_{i+1}`` around the ring."""
    return frozenset(
        source ^ (1 << ((i + rotation) % n)) ^ (1 << ((i + rotation + 1) % n))
        for i in range(n))


# -- confirmation -------------------------------------------------------------

@dataclass(frozen=True)
class BreakInstance:
    """A counterexample: the fault set, one broken pair, and its audit."""

    dim: int
    faults: Tuple[int, ...]
    source: Optional[int]
    dest: Optional[int]
    breaking_pairs: int
    confirmed: bool
    generations: int
    evaluations: int
    issues: Tuple[str, ...] = ()

    def describe(self) -> str:
        topo = Hypercube(self.dim)
        fault_list = ", ".join(topo.format_node(v) for v in self.faults)
        lines = [
            f"Q{self.dim} adversarial search: "
            f"{len(self.faults)} faults [{fault_list}]",
            f"  breaking pairs: {self.breaking_pairs} "
            f"({self.generations} generation(s), "
            f"{self.evaluations} evaluations)",
        ]
        if self.source is not None and self.dest is not None:
            lines.append(
                f"  witness: {topo.format_node(self.source)} -> "
                f"{topo.format_node(self.dest)} "
                f"(H={bin(self.source ^ self.dest).count('1')}) "
                "aborts at source; BFS oracle delivers")
        lines.append("  confirmed by invariant checker: "
                     + ("yes" if self.confirmed else "NO"))
        for issue in self.issues:
            lines.append(f"    violation: {issue}")
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "dim": self.dim,
            "faults": list(self.faults),
            "source": self.source,
            "dest": self.dest,
            "breaking_pairs": self.breaking_pairs,
            "confirmed": self.confirmed,
            "generations": self.generations,
            "evaluations": self.evaluations,
            "issues": list(self.issues),
        }


def confirm_break(
    topo: Hypercube,
    faults: FaultSet,
    source: int,
    dest: int,
) -> Tuple[bool, List[str]]:
    """Check one claimed breaking pair against the real router stack.

    Returns ``(confirmed, issues)``: confirmed means the safety-level
    unicast aborts at the source with no condition, the oracle proves the
    pair is connected, and :func:`audit_theorem3` certifies both results
    (an abort *with* a recorded condition, or a non-compliant oracle
    path, would disprove the counterexample).
    """
    issues: List[str] = []
    sl = SafetyLevels.compute(topo, faults)
    feasibility = check_feasibility(sl, source, dest)
    if feasibility.feasible:
        issues.append(
            f"{feasibility.condition.value} holds at the source")
    result = route_unicast(sl, source, dest)
    if result.status is not RouteStatus.ABORTED_AT_SOURCE:
        issues.append(f"unicast ended {result.status.value}, not aborted")
    issues.extend(audit_theorem3(topo, faults, result))
    oracle = route_oracle(topo, faults, source, dest)
    if not oracle.delivered:
        issues.append("oracle could not deliver: the pair is disconnected")
    issues.extend(audit_theorem3(topo, faults, oracle))
    return not issues, issues


# -- the search ---------------------------------------------------------------

def adversarial_search(
    dim: int = 6,
    max_faults: Optional[int] = None,
    *,
    seed: int = 0,
    generations: int = 40,
    population: int = 24,
) -> BreakInstance:
    """Evolve a fault set of at most ``max_faults`` (default ``dim``)
    faults that defeats C1–C3 routability, then minimize and confirm it.

    Returns the best instance found; ``confirmed`` is False when the
    budget found nothing (e.g. ``max_faults < dim - 1``, inside the
    Property 2 guarantee).
    """
    topo = Hypercube(dim)
    n = topo.dimension
    budget = max_faults if max_faults is not None else n
    budget = min(budget, topo.num_nodes - 2)
    rng = as_rng(seed)

    def random_set() -> FrozenSet[int]:
        return frozenset(
            int(v) for v in rng.choice(topo.num_nodes,
                                       size=min(budget, topo.num_nodes),
                                       replace=False))

    # Seeded structured candidates first (trimmed to the budget), random
    # sets after; dedup keeps the population diverse.
    pool: List[FrozenSet[int]] = []
    seen = set()
    for source in range(topo.num_nodes):
        for rotation in range(n):
            candidate = _ring_candidate(n, source, rotation)
            candidate = frozenset(sorted(candidate)[:budget])
            if candidate not in seen:
                seen.add(candidate)
                pool.append(candidate)
            if len(pool) >= population:
                break
        if len(pool) >= population:
            break
    while len(pool) < population:
        candidate = random_set()
        if candidate not in seen:
            seen.add(candidate)
            pool.append(candidate)

    evaluations = 0
    cache: Dict[FrozenSet[int], int] = {}

    def fitness(candidate: FrozenSet[int]) -> int:
        nonlocal evaluations
        if candidate not in cache:
            evaluations += 1
            cache[candidate] = len(
                _breaking_pairs(topo, FaultSet(nodes=candidate)))
        return cache[candidate]

    best: FrozenSet[int] = pool[0]
    best_fit = 0
    generation = 0
    for generation in range(1, generations + 1):
        scored = sorted(pool, key=lambda c: (-fitness(c), sorted(c)))
        if fitness(scored[0]) > best_fit:
            best, best_fit = scored[0], fitness(scored[0])
        if best_fit > 0:
            break
        # Elitist quarter survives; children mutate one fault or cross
        # two parents by sampling from their union.
        elite = scored[:max(2, population // 4)]
        children: List[FrozenSet[int]] = list(elite)
        while len(children) < population:
            if rng.random() < 0.5 or len(elite) < 2:
                parent = elite[int(rng.integers(len(elite)))]
                outside = [v for v in range(topo.num_nodes)
                           if v not in parent]
                mutated = set(parent)
                if mutated and outside:
                    mutated.discard(sorted(mutated)[
                        int(rng.integers(len(mutated)))])
                    mutated.add(outside[int(rng.integers(len(outside)))])
                child = frozenset(mutated)
            else:
                a, b = (elite[int(rng.integers(len(elite)))]
                        for _ in range(2))
                union = sorted(a | b)
                size = min(budget, len(union))
                pick = rng.choice(len(union), size=size, replace=False)
                child = frozenset(union[int(i)] for i in pick)
            children.append(child)
        pool = children

    if best_fit == 0:
        return BreakInstance(
            dim=dim, faults=tuple(sorted(best)), source=None, dest=None,
            breaking_pairs=0, confirmed=False, generations=generation,
            evaluations=evaluations,
            issues=("no breaking fault set within the budget",))

    # Greedy minimization: drop any fault whose removal keeps breaking.
    minimal = set(best)
    for node in sorted(best):
        trimmed = frozenset(minimal - {node})
        if trimmed and fitness(trimmed) > 0:
            minimal.discard(node)
    final = frozenset(minimal)
    fault_set = FaultSet(nodes=final)
    pairs = _breaking_pairs(topo, fault_set)
    source, dest = min(pairs)
    confirmed, issues = confirm_break(topo, fault_set, source, dest)
    return BreakInstance(
        dim=dim, faults=tuple(sorted(final)), source=source, dest=dest,
        breaking_pairs=len(pairs), confirmed=confirmed,
        generations=generation, evaluations=evaluations,
        issues=tuple(issues))
