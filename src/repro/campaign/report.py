"""Campaign reporting: Markdown decision support + fit telemetry.

``render_report`` is a pure function of a campaign directory's contents
(pinned spec + checkpointed cells): the same completed campaign always
renders byte-identical Markdown, which is what the resume/`--jobs`
equivalence tests pin down.  The report has four sections:

1. header — campaign identity, design shape, completion state;
2. the cell table — every finished design point's aggregate responses;
3. fitted response surfaces (:mod:`repro.campaign.surface`);
4. a ranked decision-support table: per (dim, fault_model, chaos)
   scenario, policies ordered by a documented weighted score
   (delivery dominates; detour and retry costs discount it).

When an ambient/passed recorder is active, each fit is also emitted as a
``campaign_fit`` JSONL event through the standard observability hook.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from ..obs.instruments import record_campaign_fit, set_recorder
from .runner import CHECKPOINT_FILE, RESULTS_FILE, SPEC_FILE, _read_checkpoint
from .spec import CampaignSpec
from .surface import fit_surfaces

__all__ = ["render_report", "rank_policies", "POLICY_SCORE_WEIGHTS"]

#: Weighted-sum MCDM score: delivery dominates, path and retry overheads
#: discount it.  Score = w_d·delivery − w_h·mean_detour − w_r·mean_retries.
POLICY_SCORE_WEIGHTS: Dict[str, float] = {
    "delivery": 1.0,
    "detour": 0.02,
    "retries": 0.05,
}


def _fmt(value: Optional[float], digits: int = 3) -> str:
    if value is None:
        return "—"
    return f"{value:.{digits}f}"


def rank_policies(
    lines: Sequence[Dict[str, Any]],
) -> List[Tuple[Tuple[int, str, str], List[Tuple[str, float, float]]]]:
    """Ranked policies per (dim, fault_model, chaos) scenario.

    Returns ``[(scenario, [(policy, score, mean_delivery), ...]), ...]``
    with scenarios sorted and policies scored by
    :data:`POLICY_SCORE_WEIGHTS` averaged over the scenario's fault
    counts, best first (ties broken by policy name for determinism).
    """
    buckets: Dict[Tuple[int, str, str],
                  Dict[str, List[Dict[str, Any]]]] = {}
    for line in lines:
        f = line["factors"]
        scenario = (int(f["dim"]), str(f["fault_model"]), str(f["chaos"]))
        buckets.setdefault(scenario, {}).setdefault(
            str(f["policy"]), []).append(line["responses"])

    w = POLICY_SCORE_WEIGHTS
    ranked = []
    for scenario in sorted(buckets):
        rows = []
        for policy, cells in sorted(buckets[scenario].items()):
            delivery = sum(c["delivery_rate"] for c in cells) / len(cells)
            detours = [c["mean_detour"] for c in cells
                       if c.get("mean_detour") is not None]
            retries = [c["mean_retries"] for c in cells
                       if c.get("mean_retries") is not None]
            score = (w["delivery"] * delivery
                     - w["detour"] * (sum(detours) / len(detours)
                                      if detours else 0.0)
                     - w["retries"] * (sum(retries) / len(retries)
                                       if retries else 0.0))
            rows.append((policy, round(score, 6), round(delivery, 6)))
        rows.sort(key=lambda r: (-r[1], r[0]))
        ranked.append((scenario, rows))
    return ranked


def _load_campaign_dir(
    path: Path,
) -> Tuple[Dict[str, Any], List[Dict[str, Any]]]:
    """(pinned spec payload, finished cell lines in design order)."""
    spec_path = path / SPEC_FILE
    if not spec_path.exists():
        raise FileNotFoundError(
            f"{path} is not a campaign directory (no {SPEC_FILE})")
    pinned = json.loads(spec_path.read_text(encoding="utf-8"))
    results_path = path / RESULTS_FILE
    if results_path.exists():
        lines = [json.loads(line) for line in
                 results_path.read_text(encoding="utf-8").splitlines()
                 if line.strip()]
    else:
        done = _read_checkpoint(path / CHECKPOINT_FILE)
        lines = [done[index] for index in sorted(done)]
    return pinned, lines


def render_report(
    path: Union[str, Path],
    *,
    recorder: Optional[Any] = None,
) -> str:
    """Render the campaign's Markdown report from its directory.

    Works on finished *and* interrupted campaigns: an incomplete one is
    rendered from whatever cells the checkpoint holds, behind an explicit
    banner, so progress can be inspected mid-flight.
    """
    out = Path(path)
    pinned, lines = _load_campaign_dir(out)
    spec = CampaignSpec.from_dict(pinned["spec"])
    from .design import build_design  # cycle-free late import

    total = len(build_design(spec))
    fits = fit_surfaces(lines)

    if recorder is not None:
        previous = set_recorder(recorder)
    try:
        for fit in fits:
            record_campaign_fit(dict(campaign=spec.name, **fit.to_dict()))
    finally:
        if recorder is not None:
            set_recorder(previous)

    md: List[str] = []
    md.append(f"# Campaign report: {spec.name}")
    md.append("")
    md.append(f"- spec digest: `{pinned['digest']}`")
    md.append(f"- design: {spec.design} "
              f"({len(lines)}/{total} cells finished), "
              f"{spec.trials} trials/cell, seed {spec.seed}")
    md.append(f"- factors: dims={list(spec.dims)}, "
              f"fault_models={list(spec.fault_models)}, "
              f"fault_counts={list(spec.fault_counts)}, "
              f"chaos={list(spec.chaos_profiles)}, "
              f"policies={list(spec.policies)}")
    if len(lines) < total:
        md.append("")
        md.append(f"> **INCOMPLETE** — {total - len(lines)} cells pending; "
                  f"resume with `repro campaign resume {out}`.")
    md.append("")

    md.append("## Cells")
    md.append("")
    md.append("| cell | delivery | mean hops | detour | retries | latency |")
    md.append("|---|---|---|---|---|---|")
    for line in lines:
        r = line["responses"]
        md.append(
            f"| `{line['cell_id']}` | {_fmt(r['delivery_rate'])} "
            f"| {_fmt(r.get('mean_hops'))} | {_fmt(r.get('mean_detour'))} "
            f"| {_fmt(r.get('mean_retries'))} "
            f"| {_fmt(r.get('mean_latency'))} |")
    md.append("")

    if fits:
        md.append("## Response surfaces (vs fault count)")
        md.append("")
        md.append("| group | response | model | r² |")
        md.append("|---|---|---|---|")
        for fit in fits:
            group = (f"q{fit.dim}/{fit.fault_model}"
                     f"/chaos.{fit.chaos}/{fit.policy}")
            md.append(f"| `{group}` | {fit.response} | "
                      f"`{fit.equation()}` | {fit.r2:.3f} |")
        md.append("")

    ranked = rank_policies(lines)
    if ranked:
        md.append("## Decision support: policy ranking")
        md.append("")
        md.append(f"Score = {POLICY_SCORE_WEIGHTS['delivery']}·delivery − "
                  f"{POLICY_SCORE_WEIGHTS['detour']}·detour − "
                  f"{POLICY_SCORE_WEIGHTS['retries']}·retries, averaged "
                  "over the scenario's fault counts.")
        md.append("")
        md.append("| scenario | rank | policy | score | delivery |")
        md.append("|---|---|---|---|---|")
        for (dim, model, chaos), rows in ranked:
            scenario = f"q{dim}/{model}/chaos.{chaos}"
            for position, (policy, score, delivery) in enumerate(rows, 1):
                md.append(f"| `{scenario}` | {position} | {policy} "
                          f"| {score:.3f} | {delivery:.3f} |")
        md.append("")
        best = {scenario: rows[0][0] for scenario, rows in ranked if rows}
        if len(set(best.values())) == 1:
            md.append(f"**Recommendation:** `{next(iter(best.values()))}` "
                      "leads every scenario.")
        else:
            parts = [f"`{policy}` for q{dim}/{model}/chaos.{chaos}"
                     for (dim, model, chaos), policy in sorted(best.items())]
            md.append("**Recommendation:** " + "; ".join(parts) + ".")
        md.append("")

    return "\n".join(md)
