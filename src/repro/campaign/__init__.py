"""Fault-campaign design-space exploration (DAVOS-style DSE).

One declarative :class:`CampaignSpec` expands into a factorial (or
seeded-fractional) design over cube dimension, fault model, fault count,
chaos profile, and routing policy; the resumable runner evaluates every
cell through the unified experiment interface with per-cell checkpoints;
the analysis stage fits response surfaces and renders a ranked
decision-support report; and the adversarial module evolves minimal
fault sets that defeat the paper's C1–C3 routability ladder.

See DESIGN.md §9 and EXPERIMENTS.md E22 for the full contract.
"""

from .adversarial import BreakInstance, adversarial_search, confirm_break
from .design import Cell, build_design, fractional_design, full_factorial
from .report import POLICY_SCORE_WEIGHTS, rank_policies, render_report
from .runner import CampaignResult, resume_campaign, run_campaign
from .spec import (
    CHAOS_PROFILES,
    DESIGNS,
    FAULT_MODELS,
    POLICIES,
    CampaignSpec,
    load_spec,
    spec_digest,
)
from .surface import RESPONSES, SurfaceFit, fit_surfaces

__all__ = [
    "BreakInstance",
    "adversarial_search",
    "confirm_break",
    "Cell",
    "build_design",
    "fractional_design",
    "full_factorial",
    "POLICY_SCORE_WEIGHTS",
    "rank_policies",
    "render_report",
    "CampaignResult",
    "resume_campaign",
    "run_campaign",
    "CHAOS_PROFILES",
    "DESIGNS",
    "FAULT_MODELS",
    "POLICIES",
    "CampaignSpec",
    "load_spec",
    "spec_digest",
    "RESPONSES",
    "SurfaceFit",
    "fit_surfaces",
]
