"""Resumable campaign execution: design cells -> checkpointed results.

The runner walks the design in full-factorial order and evaluates each
cell as one seeded Monte-Carlo sweep.  Three properties are load-bearing:

* **Unified invocation.**  Every cell is wrapped in an ad-hoc
  :class:`~repro.analysis.experiments.ExperimentSpec` and executed through
  ``ExperimentSpec.run(trials=..., jobs=..., recorder=...)`` — the same
  interface the CLI drives registered experiments through — so worker
  count and telemetry plumbing have exactly one implementation.
* **Byte-identical determinism.**  A cell's trial stream depends only on
  the campaign seed and the cell's full-factorial index (via
  :meth:`Cell.seed`), and trials run through
  :func:`~repro.analysis.sweep.map_trials`; aggregates are computed in
  trial order from rounded floats.  Serial and ``--jobs N`` runs — and
  any interleaving of interrupt/resume — therefore produce the same
  ``results.jsonl`` and ``report.md`` bytes.
* **Crash-safe resume.**  Completed cells append one canonical-JSON line
  to ``cells.jsonl`` (the checkpoint); a torn final line from a killed
  run is detected and ignored.  ``resume_campaign`` reloads the pinned
  spec from ``spec.json``, refuses digest mismatches, and re-runs only
  the missing cells.

Campaign directory layout::

    spec.json      pinned spec + digest (written once)
    cells.jsonl    append-only checkpoint, one line per finished cell
    results.jsonl  deterministic merged results in design order (on completion)
    report.md      rendered decision-support report (on completion)
"""

from __future__ import annotations

import json
from dataclasses import dataclass, replace as dc_replace
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from ..analysis.experiments import ExperimentSpec
from ..analysis.sweep import map_trials
from ..chaos import LinkKill, random_chaos_plan
from ..core.fault_models import uniform_link_faults, uniform_node_faults
from ..core.faults import FaultSet
from ..core.hypercube import Hypercube
from ..obs.instruments import record_campaign_cell
from ..routing.baselines.dfs_backtrack import route_dfs
from ..routing.baselines.oracle import route_oracle
from ..routing.link_fault_routing import route_unicast_with_links
from ..routing.resilient import route_unicast_resilient
from ..routing.safety_unicast import route_unicast
from ..safety.levels import SafetyLevels
from ..safety.link_faults import compute_extended_levels
from .design import Cell, build_design
from .spec import CampaignSpec, spec_digest

__all__ = [
    "CampaignResult",
    "run_campaign",
    "resume_campaign",
]

SPEC_FILE = "spec.json"
CHECKPOINT_FILE = "cells.jsonl"
RESULTS_FILE = "results.jsonl"
REPORT_FILE = "report.md"


# -- per-trial evaluation -----------------------------------------------------

def _draw_faults(topo: Hypercube, model: str, count: int, rng,
                 exclude: Tuple[int, int]) -> FaultSet:
    """The cell's static fault pattern; source/dest stay alive."""
    if model == "node":
        return uniform_node_faults(topo, count, rng, exclude=exclude)
    if model == "link":
        return uniform_link_faults(topo, count, rng)
    if model == "mixed":
        # Half/half (nodes rounded up), node part drawn first so link
        # candidates connect survivors only — every link fault effective.
        node_count = count - count // 2
        nodes = uniform_node_faults(topo, node_count, rng,
                                    exclude=exclude).nodes
        candidates = [(a, b) for a, b in topo.edges()
                      if a not in nodes and b not in nodes]
        link_count = count // 2
        if link_count > len(candidates):
            raise ValueError(
                f"{link_count} link faults do not fit next to "
                f"{node_count} node faults in Q{topo.dimension}")
        idx = (rng.choice(len(candidates), size=link_count, replace=False)
               if link_count else [])
        return FaultSet(nodes=nodes, links=[candidates[int(i)] for i in idx])
    raise ValueError(f"unknown fault model {model!r}")


def _split_kills(profile: str, kills: int) -> Tuple[int, int]:
    """``(node_kills, link_kills)`` for a chaos profile's kill budget."""
    if profile in ("", "none"):
        return 0, 0
    if profile == "node":
        return kills, 0
    if profile == "link":
        return 0, kills
    if profile == "mixed":
        return kills - kills // 2, kills // 2
    raise ValueError(f"unknown chaos profile {profile!r}")


def _resilient_record(topo: Hypercube, faults: FaultSet, source: int,
                      dest: int, chaos: str, chaos_kills: int,
                      rng) -> Dict[str, Any]:
    """One hardened-protocol delivery; static link faults become tick-0
    link kills so the ACK/retry machinery reroutes around them (its level
    tables are node-based, mirroring the paper's Section 4.1 split)."""
    static = FaultSet(nodes=faults.nodes)
    sl = SafetyLevels.compute(topo, static)
    pre = tuple(LinkKill(u, v, time=0) for u, v in sorted(faults.links))
    node_kills, link_kills = _split_kills(chaos, chaos_kills)
    plan = None
    if pre or node_kills or link_kills:
        # Draw against the *full* fault set so random targets never
        # collide with the statically declared links, then fold those
        # links in as immediate kills.
        plan = random_chaos_plan(
            topo, faults, rng,
            node_kills=node_kills, link_kills=link_kills,
            horizon=4 * topo.dimension, exclude=(source, dest))
        plan = dc_replace(plan, link_kills=pre + plan.link_kills)
    result, _net = route_unicast_resilient(sl, source, dest,
                                           plan=plan, rng=rng)
    return {
        "source": source,
        "dest": dest,
        "hamming": result.hamming,
        "delivered": bool(result.delivered),
        "status": result.status,
        "condition": result.stage,
        "hops": result.hops,
        "retries": result.retries,
        "latency": result.latency,
    }


def _cell_trial(rng, dim: int, fault_model: str, fault_count: int,
                chaos: str, policy: str, chaos_kills: int) -> Dict[str, Any]:
    """One seeded scenario of a cell -> canonical flat record
    (module-level so it pickles into spawn workers)."""
    topo = Hypercube(dim)
    source = int(rng.integers(topo.num_nodes))
    dest = int(rng.integers(topo.num_nodes - 1))
    if dest >= source:
        dest += 1
    faults = _draw_faults(topo, fault_model, fault_count, rng,
                          (source, dest))
    if policy == "resilient":
        return _resilient_record(topo, faults, source, dest,
                                 chaos, chaos_kills, rng)
    if policy == "safety":
        if faults.links:
            res = route_unicast_with_links(
                compute_extended_levels(topo, faults), source, dest)
        else:
            res = route_unicast(SafetyLevels.compute(topo, faults),
                                source, dest)
    elif policy == "dfs":
        res = route_dfs(topo, faults, source, dest)
    elif policy == "oracle":
        res = route_oracle(topo, faults, source, dest)
    else:
        raise ValueError(f"unknown policy {policy!r}")
    delivered = bool(res.delivered)
    return {
        "source": source,
        "dest": dest,
        "hamming": res.hamming,
        "delivered": delivered,
        "status": res.status.value,
        "condition": res.condition.value,
        "hops": res.hops if delivered else None,
        "retries": 0,
        "latency": res.hops if delivered else None,
    }


def _aggregate(records: List[Dict[str, Any]]) -> Dict[str, Any]:
    """Deterministic cell responses from the ordered trial records."""
    trials = len(records)
    delivered = [r for r in records if r["delivered"]]

    def mean(values: List[float]) -> Optional[float]:
        return round(sum(values) / len(values), 6) if values else None

    conditions: Dict[str, int] = {}
    for r in records:
        conditions[r["condition"]] = conditions.get(r["condition"], 0) + 1
    hops = [r["hops"] for r in delivered if r["hops"] is not None]
    return {
        "trials": trials,
        "delivered": len(delivered),
        "delivery_rate": round(len(delivered) / trials, 6),
        "mean_hops": mean(hops),
        "mean_detour": mean([r["hops"] - r["hamming"] for r in delivered
                             if r["hops"] is not None]),
        "mean_retries": mean([r["retries"] for r in records]),
        "mean_latency": mean([r["latency"] for r in delivered
                              if r["latency"] is not None]),
        "conditions": {k: conditions[k] for k in sorted(conditions)},
    }


# -- cell execution through the unified experiment interface ------------------

def _evaluate_cell(cell: Cell, spec: CampaignSpec, jobs: Optional[int],
                   recorder: Optional[Any]) -> Dict[str, Any]:
    """Run one cell through ``ExperimentSpec.run`` and return responses."""
    box: Dict[str, Any] = {}
    cell_seed = cell.seed(spec.seed)

    def _runner(ctx) -> str:
        trials = ctx.trials if ctx.trials is not None else spec.trials
        records = map_trials(
            _cell_trial, cell_seed, trials,
            args=(cell.dim, cell.fault_model, cell.faults, cell.chaos,
                  cell.policy, spec.chaos_kills))
        responses = _aggregate(records)
        event = {"campaign": spec.name, "cell_id": cell.cell_id,
                 "index": cell.index}
        event.update(cell.factors())
        event.update({k: v for k, v in responses.items() if v is not None})
        record_campaign_cell(event)
        box["responses"] = responses
        return (f"{cell.cell_id}: delivery "
                f"{responses['delivery_rate']:.3f} over {trials} trials")

    exp = ExperimentSpec(
        name=f"campaign:{cell.cell_id}",
        description=f"campaign cell {cell.cell_id}",
        runner=_runner,
        quick_trials=min(spec.trials, 5),
        full_trials=spec.trials,
    )
    exp.run(trials=spec.trials, jobs=jobs, recorder=recorder)
    return box["responses"]


# -- checkpointing ------------------------------------------------------------

def _canonical_line(payload: Dict[str, Any]) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def _read_checkpoint(path: Path) -> Dict[int, Dict[str, Any]]:
    """Completed cells by full-factorial index; a torn tail is ignored."""
    done: Dict[int, Dict[str, Any]] = {}
    if not path.exists():
        return done
    lines = path.read_text(encoding="utf-8").splitlines()
    for pos, line in enumerate(lines):
        if not line.strip():
            continue
        try:
            payload = json.loads(line)
        except json.JSONDecodeError:
            if pos == len(lines) - 1:
                break  # torn final line from a killed run
            raise ValueError(
                f"{path}: corrupt checkpoint line {pos + 1}")
        done[int(payload["index"])] = payload
    return done


# -- the campaign itself ------------------------------------------------------

@dataclass(frozen=True)
class CampaignResult:
    """What one ``run_campaign``/``resume_campaign`` invocation did."""

    spec: CampaignSpec
    out_dir: Path
    digest: str
    cells_total: int
    cells_run: int
    cells_skipped: int
    complete: bool
    results_path: Optional[Path] = None
    report_path: Optional[Path] = None

    def summary(self) -> str:
        state = "complete" if self.complete else "incomplete"
        lines = [
            f"campaign {self.spec.name!r} [{self.digest[:12]}] {state}:",
            f"  cells: {self.cells_total} total, {self.cells_run} run now, "
            f"{self.cells_skipped} already checkpointed",
            f"  out:   {self.out_dir}",
        ]
        if self.results_path is not None:
            lines.append(f"  results: {self.results_path}")
        if self.report_path is not None:
            lines.append(f"  report:  {self.report_path}")
        if not self.complete:
            lines.append("  resume with: repro campaign resume "
                         f"{self.out_dir}")
        return "\n".join(lines)


def run_campaign(
    spec: CampaignSpec,
    out_dir: Optional[Union[str, Path]] = None,
    *,
    jobs: Optional[int] = None,
    recorder: Optional[Any] = None,
    max_cells: Optional[int] = None,
) -> CampaignResult:
    """Execute (or continue) a campaign, checkpointing each cell.

    ``max_cells`` bounds how many *new* cells this invocation evaluates —
    the knob the interrupt/resume tests and the CI smoke job use to stop
    a campaign mid-flight deterministically.
    """
    out = Path(out_dir) if out_dir is not None else Path(spec.resolved_out_dir)
    out.mkdir(parents=True, exist_ok=True)
    digest = spec_digest(spec)

    spec_path = out / SPEC_FILE
    if spec_path.exists():
        pinned = json.loads(spec_path.read_text(encoding="utf-8"))
        if pinned.get("digest") != digest:
            raise ValueError(
                f"{out} holds campaign {pinned.get('digest', '?')[:12]}, "
                f"refusing to mix in {digest[:12]}; use a fresh directory")
    else:
        spec_path.write_text(
            json.dumps({"digest": digest, "spec": spec.to_dict()},
                       sort_keys=True, indent=2) + "\n",
            encoding="utf-8")

    design = build_design(spec)
    checkpoint_path = out / CHECKPOINT_FILE
    done = _read_checkpoint(checkpoint_path)
    skipped = len([c for c in design if c.index in done])

    ran = 0
    with open(checkpoint_path, "a", encoding="utf-8") as checkpoint:
        for cell in design:
            if cell.index in done:
                continue
            if max_cells is not None and ran >= max_cells:
                break
            responses = _evaluate_cell(cell, spec, jobs, recorder)
            payload = {
                "index": cell.index,
                "cell_id": cell.cell_id,
                "factors": cell.factors(),
                "seed": cell.seed(spec.seed),
                "responses": responses,
            }
            checkpoint.write(_canonical_line(payload) + "\n")
            checkpoint.flush()
            done[cell.index] = payload
            ran += 1

    complete = all(cell.index in done for cell in design)
    results_path = report_path = None
    if complete:
        results_path = out / RESULTS_FILE
        ordered = [done[cell.index] for cell in design]
        results_path.write_text(
            "".join(_canonical_line(p) + "\n" for p in ordered),
            encoding="utf-8")
        from .report import render_report  # cycle-free late import
        report_path = out / REPORT_FILE
        report_path.write_text(render_report(out, recorder=recorder),
                               encoding="utf-8")
    return CampaignResult(
        spec=spec, out_dir=out, digest=digest,
        cells_total=len(design), cells_run=ran, cells_skipped=skipped,
        complete=complete, results_path=results_path,
        report_path=report_path)


def resume_campaign(
    path: Union[str, Path],
    *,
    jobs: Optional[int] = None,
    recorder: Optional[Any] = None,
    max_cells: Optional[int] = None,
) -> CampaignResult:
    """Continue the campaign pinned in ``path``'s ``spec.json``."""
    out = Path(path)
    spec_path = out / SPEC_FILE
    if not spec_path.exists():
        raise FileNotFoundError(
            f"{out} is not a campaign directory (no {SPEC_FILE})")
    pinned = json.loads(spec_path.read_text(encoding="utf-8"))
    spec = CampaignSpec.from_dict(pinned["spec"])
    if spec_digest(spec) != pinned["digest"]:
        raise ValueError(
            f"{spec_path} digest mismatch: the pinned spec was edited")
    return run_campaign(spec, out_dir=out, jobs=jobs, recorder=recorder,
                        max_cells=max_cells)
