"""Factorial design expansion: spec -> ordered list of cells.

The full factorial crosses every factor level in a fixed, documented
order (dims, then fault models, then fault counts, then chaos profiles,
then policies — rightmost factor fastest, like an odometer), so a cell's
``index`` is stable across runs and versions of the spec with identical
factor lists.  Fractional designs keep a seeded-permutation subset of the
full factorial — always a strict subset, in full-factorial order — which
is the property the hypothesis suite pins down.

Each :class:`Cell` also derives its own sweep seed from the campaign
seed and its full-factorial index, so adding or removing *other* cells
(fractional vs full) never changes a cell's trial stream.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from .spec import CampaignSpec

__all__ = ["Cell", "full_factorial", "fractional_design", "build_design"]

#: Multiplier folding the campaign seed with a cell index (prime, so
#: neighboring campaigns' cell streams do not collide).
_SEED_STRIDE = 1_000_003


@dataclass(frozen=True)
class Cell:
    """One point of the design: a factor assignment plus its identity."""

    index: int          # position in the *full* factorial
    dim: int
    fault_model: str
    faults: int
    chaos: str
    policy: str

    @property
    def cell_id(self) -> str:
        """Human-readable stable id, e.g. ``q6-node-f3-chaos.none-safety``."""
        return (f"q{self.dim}-{self.fault_model}-f{self.faults}"
                f"-chaos.{self.chaos}-{self.policy}")

    def seed(self, campaign_seed: int) -> int:
        """The cell's sweep master seed (stable under design changes)."""
        return campaign_seed * _SEED_STRIDE + self.index

    def factors(self) -> Dict[str, object]:
        """The factor assignment as a JSON-friendly mapping."""
        return {
            "dim": self.dim,
            "fault_model": self.fault_model,
            "faults": self.faults,
            "chaos": self.chaos,
            "policy": self.policy,
        }


def full_factorial(spec: CampaignSpec) -> List[Cell]:
    """Every factor combination, odometer order, indexed 0..N-1."""
    return [
        Cell(index=i, dim=dim, fault_model=model, faults=faults,
             chaos=chaos, policy=policy)
        for i, (dim, model, faults, chaos, policy) in enumerate(
            itertools.product(spec.dims, spec.fault_models,
                              spec.fault_counts, spec.chaos_profiles,
                              spec.policies))
    ]


def fractional_design(spec: CampaignSpec) -> List[Cell]:
    """A seeded ``fraction`` of the full factorial, in factorial order.

    At least one cell always survives; with ``fraction == 1.0`` the
    fractional design *is* the full factorial.  Selection permutes cell
    indices with the campaign seed and keeps a prefix, so the kept set is
    deterministic and independent of trial execution.
    """
    cells = full_factorial(spec)
    keep = max(1, round(spec.fraction * len(cells)))
    if keep >= len(cells):
        return cells
    order = np.random.default_rng(spec.seed).permutation(len(cells))
    kept = sorted(int(i) for i in order[:keep])
    return [cells[i] for i in kept]


def build_design(spec: CampaignSpec) -> List[Cell]:
    """Expand a spec into its ordered cell list."""
    if spec.design == "full":
        return full_factorial(spec)
    if spec.design == "fractional":
        return fractional_design(spec)
    raise ValueError(f"unknown design {spec.design!r}")
