"""Response-surface fits over campaign results (the DSE analysis stage).

Each (dim, fault_model, chaos, policy) group of cells traces a response
against the fault-count axis — the campaign's intensity factor.  Two
model families cover the responses the runner aggregates:

* ``delivery_rate`` is a probability, so it gets a **logistic** surface
  ``p(f) = 1 / (1 + exp(-(a + b f)))`` fitted by least squares on the
  logit-transformed (clipped) rates — no SciPy required, deterministic.
* ``mean_hops`` / ``mean_detour`` / ``mean_retries`` / ``mean_latency``
  get **polynomial** surfaces (degree <= 2, clamped to the number of
  distinct fault counts minus one) via ``numpy.polyfit``.

Goodness of fit (``r2``) is always computed back in the original
response space, so logistic and polynomial surfaces rank comparably.
Coefficients are rounded before serialization; the report renderer and
the ``campaign_fit`` telemetry event both consume :meth:`SurfaceFit.to_dict`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, List, Sequence, Tuple

import numpy as np

__all__ = ["SurfaceFit", "fit_surfaces", "RESPONSES"]

#: Responses fitted per cell group, in report order.
RESPONSES: Tuple[str, ...] = (
    "delivery_rate",
    "mean_hops",
    "mean_detour",
    "mean_retries",
    "mean_latency",
)

#: Clip for the logit transform: rates of exactly 0/1 stay finite.
_EPS = 1e-6


@dataclass(frozen=True)
class SurfaceFit:
    """One fitted response surface for one factor group."""

    dim: int
    fault_model: str
    chaos: str
    policy: str
    response: str
    kind: str                    # "logistic" | "poly"
    coeffs: Tuple[float, ...]    # low order first: (a, b, [c])
    r2: float
    points: int

    def predict(self, faults: float) -> float:
        """The surface's value at a fault count."""
        acc = sum(c * faults ** k for k, c in enumerate(self.coeffs))
        if self.kind == "logistic":
            return 1.0 / (1.0 + math.exp(-acc))
        return acc

    def equation(self) -> str:
        """Human-readable model string for the report."""
        terms = []
        for k, c in enumerate(self.coeffs):
            if k == 0:
                terms.append(f"{c:+.4g}")
            elif k == 1:
                terms.append(f"{c:+.4g}·f")
            else:
                terms.append(f"{c:+.4g}·f^{k}")
        body = " ".join(terms)
        if self.kind == "logistic":
            return f"p = logistic({body})"
        return f"y = {body}"

    def to_dict(self) -> Dict[str, Any]:
        return {
            "dim": self.dim,
            "fault_model": self.fault_model,
            "chaos": self.chaos,
            "policy": self.policy,
            "response": self.response,
            "kind": self.kind,
            "coeffs": list(self.coeffs),
            "r2": self.r2,
            "points": self.points,
        }


def _r2(actual: np.ndarray, predicted: np.ndarray) -> float:
    ss_res = float(np.sum((actual - predicted) ** 2))
    ss_tot = float(np.sum((actual - np.mean(actual)) ** 2))
    if ss_tot == 0.0:
        return 1.0 if ss_res == 0.0 else 0.0
    return 1.0 - ss_res / ss_tot


def _fit_logistic(x: np.ndarray, y: np.ndarray) -> Tuple[Tuple[float, ...],
                                                         float]:
    clipped = np.clip(y, _EPS, 1.0 - _EPS)
    logits = np.log(clipped / (1.0 - clipped))
    slope, intercept = np.polyfit(x, logits, 1)
    coeffs = (round(float(intercept), 8), round(float(slope), 8))
    predicted = 1.0 / (1.0 + np.exp(-(coeffs[0] + coeffs[1] * x)))
    return coeffs, round(_r2(y, predicted), 6)


def _fit_poly(x: np.ndarray, y: np.ndarray,
              degree: int) -> Tuple[Tuple[float, ...], float]:
    fitted = np.polyfit(x, y, degree)          # high order first
    coeffs = tuple(round(float(c), 8) for c in fitted[::-1])
    predicted = sum(c * x ** k for k, c in enumerate(coeffs))
    return coeffs, round(_r2(y, np.asarray(predicted)), 6)


def fit_surfaces(lines: Sequence[Dict[str, Any]]) -> List[SurfaceFit]:
    """Fit every response of every factor group with >= 2 fault counts.

    ``lines`` are checkpoint/results payloads (``factors`` + ``responses``
    keys).  Groups and fits come back in deterministic (sorted-group,
    canonical-response) order.
    """
    groups: Dict[Tuple[int, str, str, str],
                 List[Tuple[int, Dict[str, Any]]]] = {}
    for line in lines:
        f = line["factors"]
        key = (int(f["dim"]), str(f["fault_model"]), str(f["chaos"]),
               str(f["policy"]))
        groups.setdefault(key, []).append((int(f["faults"]),
                                           line["responses"]))

    fits: List[SurfaceFit] = []
    for key in sorted(groups):
        dim, fault_model, chaos, policy = key
        cells = sorted(groups[key], key=lambda item: item[0])
        for response in RESPONSES:
            pairs = [(faults, resp.get(response)) for faults, resp in cells
                     if resp.get(response) is not None]
            if len({faults for faults, _ in pairs}) < 2:
                continue
            x = np.array([p[0] for p in pairs], dtype=float)
            y = np.array([p[1] for p in pairs], dtype=float)
            if response == "delivery_rate":
                kind = "logistic"
                coeffs, r2 = _fit_logistic(x, y)
            else:
                kind = "poly"
                degree = min(2, len(set(x.tolist())) - 1)
                coeffs, r2 = _fit_poly(x, y, degree)
            fits.append(SurfaceFit(
                dim=dim, fault_model=fault_model, chaos=chaos,
                policy=policy, response=response, kind=kind,
                coeffs=coeffs, r2=r2, points=len(pairs)))
    return fits
