"""Declarative campaign specs: the *what* of a fault campaign.

A :class:`CampaignSpec` names the factors of a design-space exploration
over the routing suite — cube dimension, fault model, fault count, chaos
profile, routing policy — plus the execution knobs (trials per cell,
master seed, full vs fractional design).  It is pure data: the same spec
always expands to the same design (:mod:`repro.campaign.design`) and,
through the seeded sweep engine, to byte-identical results for any
worker count.

Specs load from TOML or JSON files (``load_spec``) or plain dicts
(``CampaignSpec.from_dict``); unknown keys and out-of-vocabulary factor
levels fail loudly at load time, not mid-campaign.  ``spec_digest`` is
the canonical-JSON SHA-256 a campaign directory pins itself to, so
``resume`` can refuse to mix results from different specs.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, fields, replace
from pathlib import Path
from typing import Any, Dict, Mapping, Tuple, Union

__all__ = [
    "FAULT_MODELS",
    "CHAOS_PROFILES",
    "POLICIES",
    "DESIGNS",
    "CampaignSpec",
    "load_spec",
    "spec_digest",
]

#: Static fault placement per cell: node kills, link kills, or half/half.
FAULT_MODELS: Tuple[str, ...] = ("node", "link", "mixed")

#: Mid-flight injection profile (resilient policy only; "none" disables).
CHAOS_PROFILES: Tuple[str, ...] = ("none", "node", "link", "mixed")

#: Routing policies a cell can exercise: the paper's C1/C2/C3 ladder
#: ("safety", which switches to the Section 4.1 EGS ladder for cells with
#: link faults), the hardened ACK/retry protocol, the Chen–Shin
#: DFS-backtrack baseline, and the global-information BFS oracle.
POLICIES: Tuple[str, ...] = ("safety", "resilient", "dfs", "oracle")

#: Design expansions over the factor grid.
DESIGNS: Tuple[str, ...] = ("full", "fractional")


@dataclass(frozen=True)
class CampaignSpec:
    """One declarative campaign: factors x execution knobs.

    Factor fields hold the *levels* each factor sweeps; the design stage
    crosses them.  ``trials`` Monte-Carlo trials run per cell, seeded by
    ``seed`` and the cell's index, so every cell is independently
    reproducible.  ``fraction`` applies only to fractional designs: the
    kept share of the full factorial, selected by a seeded permutation
    (always a subset of the full design).  ``chaos_kills`` is the
    mid-flight kill budget a non-``"none"`` chaos profile injects per
    trial.  ``out_dir`` is where ``repro campaign run`` checkpoints and
    reports unless overridden on the command line.
    """

    name: str = "campaign"
    dims: Tuple[int, ...] = (4,)
    fault_models: Tuple[str, ...] = ("node",)
    fault_counts: Tuple[int, ...] = (0, 1, 2, 3)
    chaos_profiles: Tuple[str, ...] = ("none",)
    policies: Tuple[str, ...] = ("safety", "oracle")
    trials: int = 50
    seed: int = 0
    design: str = "full"
    fraction: float = 0.5
    chaos_kills: int = 1
    out_dir: str = ""

    def __post_init__(self) -> None:
        coerced = {
            "dims": tuple(int(d) for d in _as_tuple(self.dims)),
            "fault_models": tuple(str(m) for m in _as_tuple(self.fault_models)),
            "fault_counts": tuple(int(f) for f in _as_tuple(self.fault_counts)),
            "chaos_profiles": tuple(str(c) for c in _as_tuple(self.chaos_profiles)),
            "policies": tuple(str(p) for p in _as_tuple(self.policies)),
        }
        for key, value in coerced.items():
            object.__setattr__(self, key, value)
        self._validate()

    def _validate(self) -> None:
        def check_levels(label: str, levels: Tuple[str, ...],
                         vocab: Tuple[str, ...]) -> None:
            unknown = [x for x in levels if x not in vocab]
            if unknown:
                raise ValueError(
                    f"unknown {label} {unknown!r}; expected from {vocab}")

        if not self.name or "/" in self.name:
            raise ValueError(f"campaign name must be a non-empty path-safe "
                             f"string, got {self.name!r}")
        for label, levels in (("dims", self.dims),
                              ("fault_models", self.fault_models),
                              ("fault_counts", self.fault_counts),
                              ("chaos_profiles", self.chaos_profiles),
                              ("policies", self.policies)):
            if not levels:
                raise ValueError(f"{label} must name at least one level")
        if any(d < 2 for d in self.dims):
            raise ValueError(f"dims must all be >= 2, got {self.dims}")
        if any(f < 0 for f in self.fault_counts):
            raise ValueError(
                f"fault_counts must be nonnegative, got {self.fault_counts}")
        check_levels("fault model", self.fault_models, FAULT_MODELS)
        check_levels("chaos profile", self.chaos_profiles, CHAOS_PROFILES)
        check_levels("policy", self.policies, POLICIES)
        if self.design not in DESIGNS:
            raise ValueError(
                f"design must be one of {DESIGNS}, got {self.design!r}")
        if self.trials < 1:
            raise ValueError(f"trials must be >= 1, got {self.trials}")
        if not (0.0 < self.fraction <= 1.0):
            raise ValueError(
                f"fraction must be in (0, 1], got {self.fraction}")
        if self.chaos_kills < 0:
            raise ValueError(
                f"chaos_kills must be >= 0, got {self.chaos_kills}")
        # A cell cannot place more faults than the cube has spare nodes
        # (two endpoints stay alive); catch it at spec time.
        max_faults = max(self.fault_counts)
        min_nodes = 1 << min(self.dims)
        if max_faults > min_nodes - 2:
            raise ValueError(
                f"{max_faults} faults do not fit in Q{min(self.dims)} "
                f"with two live endpoints")

    # -- serialization -------------------------------------------------------

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CampaignSpec":
        """Build a spec from a plain mapping (TOML/JSON payload shape)."""
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"unknown campaign spec keys {sorted(unknown)}; "
                f"expected from {sorted(known)}")
        return cls(**dict(data))

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "dims": list(self.dims),
            "fault_models": list(self.fault_models),
            "fault_counts": list(self.fault_counts),
            "chaos_profiles": list(self.chaos_profiles),
            "policies": list(self.policies),
            "trials": self.trials,
            "seed": self.seed,
            "design": self.design,
            "fraction": self.fraction,
            "chaos_kills": self.chaos_kills,
            "out_dir": self.out_dir,
        }

    def canonical_json(self) -> str:
        """The canonical serialized form (sorted keys, no whitespace)."""
        return json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":"))

    def with_updates(self, **changes: Any) -> "CampaignSpec":
        """A copy with fields replaced (re-validated)."""
        return replace(self, **changes)

    @property
    def resolved_out_dir(self) -> str:
        return self.out_dir or f"campaign_{self.name}"


def spec_digest(spec: CampaignSpec) -> str:
    """SHA-256 of the canonical form — the resume-compatibility key.

    ``out_dir`` is excluded: where a campaign writes does not change what
    it computes, so moving a directory never invalidates its checkpoint.
    """
    payload = spec.to_dict()
    payload.pop("out_dir")
    canon = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canon.encode()).hexdigest()


def load_spec(path: Union[str, Path]) -> CampaignSpec:
    """Load a spec from a ``.toml`` or ``.json`` file.

    TOML files may nest everything under a ``[campaign]`` table (the
    documented layout) or keep the keys top-level; JSON files hold the
    ``to_dict`` shape.
    """
    p = Path(path)
    text = p.read_text(encoding="utf-8")
    if p.suffix.lower() == ".toml":
        import tomllib

        data = tomllib.loads(text)
        if "campaign" in data and isinstance(data["campaign"], dict):
            data = data["campaign"]
    elif p.suffix.lower() == ".json":
        data = json.loads(text)
    else:
        raise ValueError(
            f"campaign specs are .toml or .json files, got {p.name!r}")
    if not isinstance(data, dict):
        raise ValueError(f"{p}: spec must be a table/object")
    return CampaignSpec.from_dict(data)


def _as_tuple(value: Any) -> Tuple[Any, ...]:
    """Coerce scalars and lists into level tuples (TOML convenience)."""
    if isinstance(value, (list, tuple)):
        return tuple(value)
    return (value,)
