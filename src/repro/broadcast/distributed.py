"""Broadcast strategies as real message-passing protocols.

Fidelity twins of the computational functions in
:mod:`repro.broadcast.broadcast`, run on the simulator: the flooding
protocol and the (safety-ordered) binomial-tree protocol.  The tests
assert that covered sets and message counts match the computational
versions exactly, so the cheap versions can be trusted in sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Optional, Sequence, Tuple

from ..core.faults import FaultSet
from ..core.hypercube import Hypercube
from ..safety.levels import SafetyLevels
from ..simcore.message import Message
from ..simcore.network import Network
from ..simcore.node import NodeProcess
from .broadcast import BroadcastResult

__all__ = ["run_flooding_protocol", "run_tree_protocol"]

KIND_FLOOD = "bcast-flood"
KIND_TREE = "bcast-tree"


class FloodProcess(NodeProcess):
    """Forward the payload to every healthy neighbor on first receipt."""

    __slots__ = ("healthy_neighbors", "received_at")

    def __init__(self, healthy_neighbors: Sequence[int]) -> None:
        super().__init__()
        self.healthy_neighbors = list(healthy_neighbors)
        self.received_at: Optional[int] = None

    def start_broadcast(self) -> None:
        self.received_at = 0
        self._forward()

    def _forward(self) -> None:
        for v in self.healthy_neighbors:
            self.send(v, KIND_FLOOD, None, payload_units=1)

    def on_message(self, msg: Message) -> None:
        if self.received_at is None:
            self.received_at = self.now
            self._forward()


class TreeProcess(NodeProcess):
    """Binomial-tree forwarding with a pluggable dimension order.

    ``level_of_neighbor`` drives the safety ordering; pass None for the
    classic fixed descending order.
    """

    __slots__ = ("n", "level_of_neighbor", "dead_neighbors", "received_at")

    def __init__(self, n: int,
                 level_of_neighbor: Optional[Dict[int, int]],
                 dead_neighbors: Sequence[int]) -> None:
        super().__init__()
        self.n = n
        self.level_of_neighbor = level_of_neighbor
        self.dead_neighbors = frozenset(dead_neighbors)
        self.received_at: Optional[int] = None

    def _order(self, dims: Tuple[int, ...]) -> list:
        if self.level_of_neighbor is None:
            return sorted(dims, reverse=True)
        return sorted(
            dims,
            key=lambda d: (-self.level_of_neighbor[self.node_id ^ (1 << d)],
                           -d),
        )

    def _spread(self, dims: Tuple[int, ...]) -> None:
        ordered = self._order(dims)
        for i, dim in enumerate(ordered):
            child = self.node_id ^ (1 << dim)
            if child in self.dead_neighbors:
                # Known-adjacent fault (paper assumption 2): the subtree
                # is lost, exactly as in the computational version.
                continue
            self.send(child, KIND_TREE, tuple(ordered[i + 1:]),
                      payload_units=1)

    def start_broadcast(self) -> None:
        self.received_at = 0
        self._spread(tuple(range(self.n)))

    def on_message(self, msg: Message) -> None:
        if self.received_at is None:
            self.received_at = self.now
        self._spread(msg.payload)


def _collect(net: Network, source: int, strategy: str) -> BroadcastResult:
    covered = set()
    depth = 0
    for node, proc in net.processes.items():
        at = getattr(proc, "received_at")
        if at is not None:
            covered.add(node)
            depth = max(depth, at)
    return BroadcastResult(strategy=strategy, source=source,
                           covered=frozenset(covered),
                           messages=net.stats.sent, depth=depth)


def run_flooding_protocol(
    topo: Hypercube, faults: FaultSet, source: int
) -> Tuple[BroadcastResult, Network]:
    """Flooding as a protocol; returns the result plus the network."""
    topo.validate_node(source)
    if faults.is_node_faulty(source):
        raise ValueError(f"source {topo.format_node(source)} is faulty")

    def factory(node: int) -> FloodProcess:
        healthy = [v for v in topo.neighbors(node)
                   if not faults.is_node_faulty(v)
                   and not faults.is_link_faulty(node, v)]
        return FloodProcess(healthy)

    net = Network(topo, faults, factory)
    net.start()
    proc = net.process(source)
    assert isinstance(proc, FloodProcess)
    proc.start_broadcast()
    net.run()
    return _collect(net, source, "flooding-protocol"), net


def run_tree_protocol(
    topo: Hypercube,
    faults: FaultSet,
    source: int,
    safety: Optional[SafetyLevels] = None,
) -> Tuple[BroadcastResult, Network]:
    """Binomial-tree broadcast as a protocol.

    With ``safety`` given, subtree assignment is safety-ordered (the [9]
    idea); otherwise classic fixed order.  Senders skip known-faulty
    children (paper assumption 2), so covered set and message count match
    the computational version exactly — asserted in the tests.
    """
    topo.validate_node(source)
    if faults.is_node_faulty(source):
        raise ValueError(f"source {topo.format_node(source)} is faulty")

    def factory(node: int) -> TreeProcess:
        levels = None
        if safety is not None:
            levels = {v: safety.level(v) for v in topo.neighbors(node)}
        dead = [v for v in topo.neighbors(node)
                if faults.is_node_faulty(v)
                or faults.is_link_faulty(node, v)]
        return TreeProcess(topo.dimension, levels, dead)

    net = Network(topo, faults, factory)
    net.start()
    proc = net.process(source)
    assert isinstance(proc, TreeProcess)
    proc.start_broadcast()
    net.run()
    strategy = "safety-tree-protocol" if safety is not None \
        else "tree-protocol"
    return _collect(net, source, strategy), net
