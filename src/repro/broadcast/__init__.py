"""Broadcast extension (experiment E11): safety-level-guided broadcasting.

Computational strategies in :mod:`repro.broadcast.broadcast`, their
message-passing twins in :mod:`repro.broadcast.distributed`.
"""

from .broadcast import (
    BroadcastResult,
    broadcast_binomial,
    broadcast_flooding,
    broadcast_safety_binomial,
    broadcast_safety_binomial_patched,
    broadcast_unicast_tree,
)
from .distributed import run_flooding_protocol, run_tree_protocol

__all__ = [
    "BroadcastResult",
    "broadcast_binomial",
    "broadcast_flooding",
    "broadcast_safety_binomial",
    "broadcast_safety_binomial_patched",
    "broadcast_unicast_tree",
    "run_flooding_protocol",
    "run_tree_protocol",
]
