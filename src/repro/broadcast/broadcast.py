"""Broadcast extension: safety-level-guided broadcasting.

The safety-level concept originated in reliable *broadcasting* (paper
ref [9], Wu, IEEE TC May 1995); this module carries the idea over as the
repository's extension feature (experiment E11).  Three strategies:

* :func:`broadcast_flooding` — every node forwards to every neighbor once.
  Reaches the whole connected component; costs about ``N * n`` messages.
* :func:`broadcast_binomial` — the classic fault-*intolerant* binomial-tree
  broadcast (``N - 1`` messages): each node forwards responsibility for
  disjoint subcubes in fixed dimension order.  A single faulty internal
  node silently loses its whole subtree.
* :func:`broadcast_safety_binomial` — binomial broadcast with the [9]
  idea: at every node the *largest* remaining subcube is entrusted to the
  neighbor with the *highest safety level*, so subtree roots are the nodes
  most likely to cover their subcube.  Same ``N - 1`` message budget as
  plain binomial; coverage under faults is measured, not guaranteed (the
  guarantee in [9] needs additional patch-up machinery out of scope here —
  see DESIGN.md).

All three return a :class:`BroadcastResult` with coverage and message
accounting so the E11 benchmark can print the trade-off table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, FrozenSet, List, Sequence, Set, Tuple

from ..core import partition
from ..core.faults import FaultSet
from ..core.hypercube import Hypercube
from ..results import base_record
from ..safety.levels import SafetyLevels

__all__ = [
    "BroadcastResult",
    "broadcast_flooding",
    "broadcast_binomial",
    "broadcast_safety_binomial",
    "broadcast_safety_binomial_patched",
    "broadcast_unicast_tree",
]


@dataclass(frozen=True)
class BroadcastResult:
    """Outcome of one broadcast."""

    strategy: str
    source: int
    #: Nonfaulty nodes that received the message (source included).
    covered: FrozenSet[int]
    messages: int
    #: Longest hop count from source to any covered node.
    depth: int

    def coverage_fraction(self, topo: Hypercube, faults: FaultSet) -> float:
        """Covered share of all *reachable* nonfaulty nodes."""
        reachable = partition.reachable_set(topo, faults, self.source)
        if not reachable:
            return 0.0
        return len(self.covered & reachable) / len(reachable)

    def missed(self, topo: Hypercube, faults: FaultSet) -> FrozenSet[int]:
        """Reachable nonfaulty nodes the strategy failed to inform."""
        reachable = partition.reachable_set(topo, faults, self.source)
        return frozenset(reachable - set(self.covered))

    # -- the shared result protocol (repro.results.ResultLike) --------------

    @property
    def status(self) -> str:
        """``"delivered"`` when anyone beyond the source heard the message,
        else ``"failed"`` (completeness needs the topology — see
        :meth:`coverage_fraction`)."""
        return "delivered" if len(self.covered) > 1 else "failed"

    def to_dict(self) -> Dict[str, Any]:
        return base_record(
            self,
            strategy=self.strategy,
            source=self.source,
            covered=len(self.covered),
            messages=self.messages,
            depth=self.depth,
        )

    def summary(self) -> str:
        return (
            f"broadcast[{self.strategy}]: {len(self.covered)} nodes covered "
            f"in depth {self.depth}, {self.messages} messages ({self.status})"
        )


def _check_source(topo: Hypercube, faults: FaultSet, source: int) -> None:
    topo.validate_node(source)
    if faults.is_node_faulty(source):
        raise ValueError(f"source {topo.format_node(source)} is faulty")


def broadcast_flooding(
    topo: Hypercube, faults: FaultSet, source: int
) -> BroadcastResult:
    """Flood the component: reliable reference, ~``N*n`` messages.

    Each node forwards to all neighbors the first time it hears the
    message; messages to faulty nodes are sent (and lost) because senders
    only know their own neighbors' health *after* paying for detection —
    we charge only messages actually emitted toward nonfaulty first-time
    receivers plus one per faulty neighbor probe avoided (senders do know
    adjacent faults, paper assumption 2, so those sends are skipped).
    """
    _check_source(topo, faults, source)
    covered = {source}
    frontier = [source]
    messages = 0
    depth = 0
    while frontier:
        nxt: List[int] = []
        for u in frontier:
            for v in topo.neighbors(u):
                if faults.is_node_faulty(v) or faults.is_link_faulty(u, v):
                    continue
                messages += 1  # every healthy neighbor gets a copy
                if v not in covered:
                    covered.add(v)
                    nxt.append(v)
        if nxt:
            depth += 1
        frontier = nxt
    return BroadcastResult(strategy="flooding", source=source,
                           covered=frozenset(covered), messages=messages,
                           depth=depth)


def _binomial(
    topo: Hypercube,
    faults: FaultSet,
    source: int,
    order_dims,
    strategy: str,
) -> BroadcastResult:
    """Shared binomial-tree engine.

    ``order_dims(node, dims)`` returns the dimension list in the order
    responsibility is handed out: the first dimension's neighbor receives
    the largest subtree (all later dimensions).
    """
    _check_source(topo, faults, source)
    covered: Set[int] = {source}
    messages = 0
    depth = 0
    # Work list of (node, dims_it_must_cover, hop_depth).
    work: List[Tuple[int, Tuple[int, ...], int]] = [
        (source, tuple(range(topo.dimension)), 0)
    ]
    while work:
        node, dims, d = work.pop()
        ordered = order_dims(node, list(dims))
        # Neighbor along ordered[i] inherits ordered[i+1:].
        for i, dim in enumerate(ordered):
            child = topo.neighbor_along(node, dim)
            if faults.is_node_faulty(child) or faults.is_link_faulty(node, child):
                # Subtree lost: plain binomial has no recourse.
                continue
            messages += 1
            covered.add(child)
            depth = max(depth, d + 1)
            rest = tuple(ordered[i + 1:])
            if rest:
                work.append((child, rest, d + 1))
    return BroadcastResult(strategy=strategy, source=source,
                           covered=frozenset(covered), messages=messages,
                           depth=depth)


def broadcast_binomial(
    topo: Hypercube, faults: FaultSet, source: int
) -> BroadcastResult:
    """Fixed descending-dimension binomial tree (fault-intolerant)."""
    return _binomial(
        topo, faults, source,
        order_dims=lambda _node, dims: sorted(dims, reverse=True),
        strategy="binomial",
    )


def broadcast_safety_binomial(
    sl: SafetyLevels, source: int
) -> BroadcastResult:
    """Binomial tree with safety-level-guided subtree assignment.

    At each node the dimensions still to cover are handed out in
    descending neighbor-level order: the highest-level neighbor receives
    the largest subtree, the lowest-level (possibly faulty) neighbor the
    smallest — so a weak neighbor can lose at most a leaf, not a subtree.
    Equal levels break ties toward higher dimensions to match the classic
    tree shape.
    """
    topo, faults = sl.topo, sl.faults

    def order(node: int, dims: List[int]) -> List[int]:
        # First handed-out dimension gets the biggest subtree, so sort by
        # neighbor level descending.
        return sorted(
            dims,
            key=lambda dim: (-sl.level(topo.neighbor_along(node, dim)), -dim),
        )

    return _binomial(topo, faults, source, order_dims=order,
                     strategy="safety-binomial")


def broadcast_safety_binomial_patched(
    sl: SafetyLevels,
    source: int,
    patch_rounds: int = 1,
) -> BroadcastResult:
    """Safety-ordered binomial tree plus idealized patch-up rounds.

    Quantifies the *minimum* price of turning the tree's best-effort
    coverage into guaranteed component coverage: each patch round delivers
    exactly one copy to every uninformed node adjacent to the informed set
    — the one-message-per-new-node floor that *any* patch protocol must
    pay, assuming perfect suppression of redundant offers.  Real local
    protocols (without an oracle of who is missing) pay strictly more; the
    E11 benchmark therefore brackets them between this lower bound and
    flooding's cost.  With enough rounds coverage equals the whole
    component.
    """
    if patch_rounds < 0:
        raise ValueError("patch_rounds must be nonnegative")
    topo, faults = sl.topo, sl.faults
    base = broadcast_safety_binomial(sl, source)
    covered: Set[int] = set(base.covered)
    messages = base.messages
    depth = base.depth
    for _round in range(patch_rounds):
        frontier = set()
        for u in covered:
            for v in topo.neighbors(u):
                if v in covered or faults.is_node_faulty(v):
                    continue
                if faults.is_link_faulty(u, v):
                    continue
                frontier.add(v)
        if not frontier:
            break
        # Ideal model: exactly one delivery per newly informed node.
        messages += len(frontier)
        covered |= frontier
        depth += 1
    return BroadcastResult(
        strategy=f"safety-binomial+patch{patch_rounds}",
        source=source, covered=frozenset(covered), messages=messages,
        depth=depth,
    )


def broadcast_unicast_tree(sl: SafetyLevels, source: int) -> BroadcastResult:
    """Guaranteed-coverage broadcast: the union of safety-level unicasts.

    Builds the greedy multicast delivery tree toward *every* nonfaulty
    node (see :func:`repro.routing.multicast.multicast_greedy_tree`).
    Theorem 2 supplies the guarantee the plain trees lack: if the source
    is ``n``-safe — and with fewer than ``n`` faults a safe node always
    exists (Property 2) — an optimal path exists to every node, so every
    branch is admitted and coverage is complete.  Costs more messages than
    the binomial trees (branches re-pay shared prefixes only once, but the
    tree is not perfectly balanced); the E11 benchmark shows where it
    lands between the tree and flooding.
    """
    from ..routing.multicast import multicast_greedy_tree  # avoid cycle

    topo, faults = sl.topo, sl.faults
    _check_source(topo, faults, source)
    dests = [v for v in faults.nonfaulty_nodes(topo) if v != source]
    res = multicast_greedy_tree(sl, source, dests)
    # Depth: longest branch measured on the link set via BFS from source.
    depth = 0
    if res.tree_links:
        adj: Dict[int, List[int]] = {}
        for a, b in res.tree_links:
            adj.setdefault(a, []).append(b)
            adj.setdefault(b, []).append(a)
        seen = {source}
        frontier = [source]
        while frontier:
            nxt = [w for u in frontier for w in adj.get(u, [])
                   if w not in seen]
            seen.update(nxt)
            if nxt:
                depth += 1
            frontier = nxt
    return BroadcastResult(
        strategy="unicast-tree", source=source,
        covered=frozenset(res.covered | {source}),
        messages=res.messages, depth=depth,
    )
