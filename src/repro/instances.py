"""Canonical paper instances: the exact cubes drawn in Figures 1, 3, 4, 5
and the Section 2.3 comparison example.

Figures 1 and 3 and the Section 2.3 fault sets are stated explicitly in
the text.  The Figure 4 and Figure 5 placements are only partially given
(the scan names some nodes and levels); the full sets used here were
recovered by constraint search over every fact the text states — see
``benchmarks/figure_recovery.py`` for the executable search and
EXPERIMENTS.md for what freedom remained.  Where the text is internally
inconsistent (two spots in the Fig. 5 walk-through), the deviation is
documented rather than silently patched.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from .core.faults import FaultSet
from .core.generalized import GeneralizedHypercube
from .core.hypercube import Hypercube

__all__ = [
    "fig1_instance",
    "fig3_instance",
    "fig4_instance",
    "fig5_instance",
    "section23_instance",
    "FIG1_EXPECTED_LEVELS",
    "FIG3_EXPECTED_LEVELS",
    "SECTION23_SL_SAFE_SET",
    "SECTION23_WF_SAFE_SET",
]


def fig1_instance() -> Tuple[Hypercube, FaultSet]:
    """Fig. 1: a four-cube with faulty nodes 0011, 0100, 0110, 1001."""
    q4 = Hypercube(4)
    return q4, FaultSet.from_addresses(q4, ["0011", "0100", "0110", "1001"])


#: Safety level of every node in Fig. 1, keyed by address string.  Values
#: named in the text: 0001/0010/0111/1011 are 1-safe after round one,
#: 0101 and 0000 become 2-safe after round two, the rest are stated in the
#: routing walk-throughs (1110, 1111, 1010, 1100, 1101 are 4-safe, the
#: faulty nodes 0-safe).
FIG1_EXPECTED_LEVELS: Dict[str, int] = {
    "0000": 2, "0001": 1, "0010": 1, "0011": 0,
    "0100": 0, "0101": 2, "0110": 0, "0111": 1,
    "1000": 4, "1001": 0, "1010": 4, "1011": 1,
    "1100": 4, "1101": 4, "1110": 4, "1111": 4,
}


def fig3_instance() -> Tuple[Hypercube, FaultSet]:
    """Fig. 3: the *disconnected* four-cube with faults 0110, 1010, 1100,
    1111 — node 1110 survives but is cut off from everything else."""
    q4 = Hypercube(4)
    return q4, FaultSet.from_addresses(q4, ["0110", "1010", "1100", "1111"])


#: Levels stated or implied in the Fig. 3 discussion: S(0101) = 2,
#: S(0111) = 1, S(0011) = 2, spare neighbors of 0111 both 2, S(1110)
#: low (all its neighbors are faulty).  The remaining entries are the
#: computed fixed point (verified against Definition 1 in tests).
FIG3_EXPECTED_LEVELS: Dict[str, int] = {
    "0000": 2, "0001": 3, "0010": 1, "0011": 2,
    "0100": 1, "0101": 2, "0110": 0, "0111": 1,
    "1000": 1, "1001": 2, "1010": 0, "1011": 1,
    "1100": 0, "1101": 1, "1110": 1, "1111": 0,
}


def fig4_instance() -> Tuple[Hypercube, FaultSet]:
    """Fig. 4: four faulty nodes plus the faulty link 1000–1001.

    The text pins: 1100 faulty, S_self(1000) = 1, S_self(1001) = 2,
    S(1111) = 4, and the suboptimal route
    1101 -> 1111 -> 1011 -> 1010 -> 1000.  Ten placements satisfy every
    stated fact; this is the lexicographically smallest (the choice is
    immaterial to every quantity the experiment checks).
    """
    q4 = Hypercube(4)
    faults = FaultSet(
        nodes=[q4.parse_node(a) for a in ["0000", "0010", "0100", "1100"]],
        links=[(q4.parse_node("1000"), q4.parse_node("1001"))],
    )
    return q4, faults


def fig5_instance() -> Tuple[GeneralizedHypercube, FaultSet]:
    """Fig. 5: the 2 x 3 x 2 generalized hypercube with four faults.

    Recovered placement {011, 100, 111, 121}: it yields exactly four safe
    nodes (as the text states), S(110) = 1 (the ineligible dimension-2
    neighbor), a faulty 011 (the ineligible dimension-0 neighbor), and the
    printed route 010 -> 000 -> 001 -> 101.  Two textual claims cannot be
    satisfied by *any* placement and are documented deviations:
    S(001) = 1 contradicts Definition 4 when 000 and 101 are alive, and
    the "another possible optimal path" of length 4 is not optimal for an
    H = 3 pair (and here passes through faulty 121).
    """
    gh = GeneralizedHypercube((2, 3, 2))
    faults = FaultSet(nodes=[gh.parse_node(a)
                             for a in ["011", "100", "111", "121"]])
    return gh, faults


def section23_instance() -> Tuple[Hypercube, FaultSet]:
    """Section 2.3 comparison example: Q4 with faults 0000, 0110, 1111."""
    q4 = Hypercube(4)
    return q4, FaultSet.from_addresses(q4, ["0000", "0110", "1111"])


#: The paper's safe sets for the Section 2.3 example.
SECTION23_SL_SAFE_SET: List[str] = [
    "0001", "0011", "0101", "1000", "1001", "1010", "1011", "1100", "1101",
]
#: The WF set *as the paper prints it* — it omits 1100.  Under the paper's
#: own Definition 3, however, 1100 is safe (it has zero faulty and only two
#: unsafe neighbors, below both thresholds), so the printed example
#: contradicts the printed definition at exactly this node.  We implement
#: the definition; the tests assert computed == printed ∪ {1100} and the
#: discrepancy is recorded in EXPERIMENTS.md.
SECTION23_WF_SAFE_SET: List[str] = [
    "0001", "0011", "0101", "1000", "1001", "1010", "1011", "1101",
]
# Lee–Hayes safe set for this instance is empty (stated in the text).
