"""repro.api — the one-stop facade over the package's core flows.

Four verbs cover the workflow the rest of the package elaborates::

    import repro

    levels = repro.api.compute_levels(4, ["0011", "0100", "0110", "1001"])
    result = repro.api.route(levels, "1110", "0001")      # RouteResult
    with repro.api.record_run("run.jsonl") as (reg, rec):
        outcomes = repro.api.sweep(my_trial_fn, trials=1000, seed=7)
    print(repro.api.stats("run.jsonl").gs_rounds_mean)

Each facade function is a thin, friendlier wrapper over the canonical
implementation (node addresses accepted as binary strings, fault sets
buildable from addresses, telemetry switched on in one line); the
underlying entry points remain public and stable, so code that outgrows
the facade drops down without rewriting.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Callable, Iterable, Optional, Sequence, Tuple, Union

from .core.faults import FaultSet
from .core.hypercube import Hypercube
from .obs.instruments import observed
from .obs.runstats import RunStats, summarize_run
from .routing.batch import BatchRouteResult, route_unicast_batch
from .routing.resilient import ResilientResult, route_unicast_resilient
from .routing.result import RouteResult
from .routing.safety_unicast import route_unicast
from .safety.levels import SafetyLevels
from .analysis.sweep import map_trials

__all__ = ["compute_levels", "route", "route_batch", "route_resilient",
           "sweep", "record_run", "stats",
           "campaign", "resume_campaign", "campaign_report",
           "confirm_break"]

NodeSpec = Union[int, str]
FaultSpec = Union[FaultSet, Iterable[Union[int, str]], None]


def _as_topo(topo: Union[Hypercube, int]) -> Hypercube:
    return topo if isinstance(topo, Hypercube) else Hypercube(int(topo))


def _as_node(topo: Hypercube, node: NodeSpec) -> int:
    return topo.parse_node(node) if isinstance(node, str) else int(node)


def _as_faults(topo: Hypercube, faults: FaultSpec) -> FaultSet:
    if faults is None:
        return FaultSet()
    if isinstance(faults, FaultSet):
        return faults
    items = list(faults)
    if any(isinstance(f, str) for f in items):
        return FaultSet.from_addresses(topo, [str(f) for f in items])
    return FaultSet(frozenset(int(f) for f in items))


def compute_levels(topo: Union[Hypercube, int],
                   faults: FaultSpec = None) -> SafetyLevels:
    """The cube's safety-level assignment (Definition 1 fixed point).

    ``topo`` is a :class:`Hypercube` or just its dimension; ``faults`` a
    :class:`FaultSet`, an iterable of node ids or binary address strings,
    or ``None`` for a fault-free cube.
    """
    cube = _as_topo(topo)
    return SafetyLevels.compute(cube, _as_faults(cube, faults))


def route(levels: SafetyLevels, source: NodeSpec, dest: NodeSpec,
          **kwargs: Any) -> RouteResult:
    """One safety-level unicast; endpoints accept ints or address strings.

    Extra keyword arguments (``tie_break``, ``rng``) pass through to
    :func:`repro.routing.route_unicast`.
    """
    topo = levels.topo
    return route_unicast(levels, _as_node(topo, source),
                         _as_node(topo, dest), **kwargs)


def route_batch(levels: SafetyLevels, sources: Sequence[NodeSpec],
                dests: Sequence[NodeSpec], **kwargs: Any) -> BatchRouteResult:
    """Route many pairs over one assignment with the batched kernel.

    ``sources``/``dests`` are equal-length sequences of ints or address
    strings; extra keyword arguments (``tie_break``, ``return_paths``,
    ``kernel``) pass through to
    :func:`repro.routing.route_unicast_batch`.  Every route's outcome is
    bit-identical to calling :func:`route` pair by pair.
    """
    topo = levels.topo
    srcs = [_as_node(topo, s) for s in sources]
    dsts = [_as_node(topo, d) for d in dests]
    return route_unicast_batch(topo, levels, srcs, dsts, **kwargs)


def route_resilient(levels: SafetyLevels, source: NodeSpec, dest: NodeSpec,
                    **kwargs: Any) -> ResilientResult:
    """One hardened unicast (hop ACKs, retries, chaos injection).

    Endpoints accept ints or address strings; extra keyword arguments
    (``plan``, ``tie_break``, ``rng``, ``strict``, retry knobs) pass
    through to :func:`repro.routing.route_unicast_resilient`.  Returns
    the :class:`~repro.routing.resilient.ResilientResult` alone — use
    the underlying entry point when the simulated network is needed too.
    """
    topo = levels.topo
    result, _net = route_unicast_resilient(
        levels, _as_node(topo, source), _as_node(topo, dest), **kwargs)
    return result


def sweep(trial_fn: Callable[..., Any], trials: int, *, seed: int = 0,
          jobs: Optional[int] = None, args: Tuple[Any, ...] = ()) -> list:
    """Run ``trial_fn(rng, *args)`` over seeded Monte-Carlo trials.

    Deterministic for any worker count; ``trial_fn`` must be a module-level
    callable when ``jobs > 1`` (it is pickled into spawn workers).  This is
    :func:`repro.analysis.sweep.map_trials` under its workflow name — use
    :func:`repro.analysis.sweep.run_sweep` directly for chunk-batched
    kernels.
    """
    return map_trials(trial_fn, seed, trials, jobs=jobs, args=args)


def record_run(path: Union[str, Path], tool: str = "repro.api",
               config: Optional[dict] = None):
    """Context manager: metrics + JSONL telemetry for the enclosed block.

    Yields ``(registry, recorder)``; on exit a final counter snapshot and
    the ``run_end`` envelope are appended and the previous observability
    state is restored.  Shorthand for :func:`repro.obs.observed`.
    """
    return observed(path, tool=tool, config=config)


def stats(path: Union[str, Path]) -> RunStats:
    """Validate and aggregate a recorded run (see ``repro stats``)."""
    return summarize_run(path)


CampaignSpecLike = Union["CampaignSpec", dict, str, Path]


def _as_campaign_spec(spec: CampaignSpecLike) -> "CampaignSpec":
    """Coerce a spec object, plain dict, or TOML/JSON path into a spec —
    the :data:`FaultSpec`-style convention applied to campaigns."""
    from .campaign import CampaignSpec, load_spec

    if isinstance(spec, CampaignSpec):
        return spec
    if isinstance(spec, dict):
        return CampaignSpec.from_dict(spec)
    return load_spec(spec)


def campaign(spec: CampaignSpecLike, **kwargs: Any):
    """Run a fault campaign (factorial DSE over the routing suite).

    ``spec`` is a :class:`~repro.campaign.CampaignSpec`, a plain dict of
    its fields, or the path to a TOML/JSON spec file.  Keyword arguments
    (``out_dir``, ``jobs``, ``recorder``, ``max_cells``) pass through to
    :func:`repro.campaign.run_campaign`; returns its
    :class:`~repro.campaign.CampaignResult`.
    """
    from .campaign import run_campaign

    return run_campaign(_as_campaign_spec(spec), **kwargs)


def resume_campaign(path: Union[str, Path], **kwargs: Any):
    """Continue the interrupted campaign checkpointed in ``path``.

    Finished cells are skipped; the merged results and report are
    byte-identical to an uninterrupted run.
    """
    from .campaign import resume_campaign as _resume

    return _resume(path, **kwargs)


def campaign_report(path: Union[str, Path]) -> str:
    """Render a campaign directory's Markdown decision-support report."""
    from .campaign import render_report

    return render_report(path)


def confirm_break(topo: Union[Hypercube, int], faults: FaultSpec,
                  source: NodeSpec, dest: NodeSpec):
    """Check a claimed C1–C3-breaking (faults, source, dest) instance.

    Accepts the facade's usual coercions (dimension or cube, address
    strings or ints); returns ``(confirmed, issues)`` from
    :func:`repro.campaign.confirm_break`.
    """
    from .campaign import confirm_break as _confirm

    cube = _as_topo(topo)
    return _confirm(cube, _as_faults(cube, faults),
                    _as_node(cube, source), _as_node(cube, dest))
