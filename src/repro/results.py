"""The common result protocol every experiment outcome satisfies.

Seven result dataclasses grew up independently across the packages —
:class:`~repro.routing.result.RouteResult`,
:class:`~repro.routing.multicast.MulticastResult`,
:class:`~repro.broadcast.broadcast.BroadcastResult`,
:class:`~repro.safety.safe_nodes.SafeNodeResult`,
:class:`~repro.simcore.sync.RoundsResult`,
:class:`~repro.simcore.contention.TrafficResult` and
:class:`~repro.safety.dynamic.DynamicRunResult` — each with its own
field vocabulary.  They now share one consumable shape
(:class:`ResultLike`): a ``status`` string (or enum whose ``.value`` is
the string), a JSON-able ``to_dict()`` whose payload always carries
``kind`` and ``status`` keys, and a one-line ``summary()``.  The
:class:`~repro.obs.recorder.RunRecorder` (``record_result``) and the
tables layer consume results through this protocol only, so new result
types plug in by conforming rather than by teaching every consumer a new
shape.  A parametrized conformance test pins all implementations.

``to_dict()`` payloads are *summaries*, not pickles: collection-valued
fields (fault masks, packet lists, tick logs) are reduced to counts or
bounded aggregates so a record is always cheap to emit and diff.
"""

from __future__ import annotations

import enum
from typing import Any, Dict, Protocol, runtime_checkable

__all__ = ["ResultLike", "status_text", "base_record", "to_jsonable"]


@runtime_checkable
class ResultLike(Protocol):
    """What the recorder and tables layer require of any result object."""

    @property
    def status(self) -> Any:  # str, or an enum whose .value is the string
        ...

    def to_dict(self) -> Dict[str, Any]:
        ...

    def summary(self) -> str:
        ...


def status_text(result: Any) -> str:
    """The normalized status string of any :class:`ResultLike`."""
    status = result.status
    if isinstance(status, enum.Enum):
        status = status.value
    return str(status)


def base_record(result: Any, **fields: Any) -> Dict[str, Any]:
    """The shared ``to_dict()`` skeleton: kind + status, then payload.

    Keeps the field names every consumer keys on in one place; result
    classes pass their type-specific payload as keyword arguments.
    """
    record: Dict[str, Any] = {
        "kind": type(result).__name__,
        "status": status_text(result),
    }
    for key, value in fields.items():
        record[key] = to_jsonable(value)
    return record


def to_jsonable(value: Any) -> Any:
    """Recursively reduce a payload value to JSON primitives.

    Handles enums (→ value), sets/frozensets (→ sorted list), numpy
    scalars/arrays (→ python numbers/lists), and mappings/sequences
    recursively.  Anything else falls back to ``str``.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, enum.Enum):
        return to_jsonable(value.value)
    if isinstance(value, dict):
        return {str(to_jsonable(k)): to_jsonable(v) for k, v in value.items()}
    if isinstance(value, (set, frozenset)):
        return sorted(to_jsonable(v) for v in value)
    if isinstance(value, (list, tuple)):
        return [to_jsonable(v) for v in value]
    if hasattr(value, "item") and not hasattr(value, "tolist"):
        return value.item()  # numpy scalar
    if hasattr(value, "tolist"):
        return value.tolist()  # numpy array
    return str(value)
